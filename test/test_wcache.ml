(* The kwcache rig: unit semantics of the volatile write-back cache
   (ack-into-dirty-set, flush as a full barrier, crash-surface
   enumeration with reorderings, the ALICE-style barrier-discipline
   audit, the lying-flush / writeback-reorder failpoints), the satellite
   regressions (Flakydev torn-write vs a refusing base, Resilient
   flush-path retry parity and the journalfs read-only flip), and the
   seeded cache-loss torture CI runs as a tier-1 smoke stage under
   KSIM_WCACHE_SEEDS. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let bytes = Alcotest.bytes

(* Base seeds, plus any extras from the environment: CI runs the torture
   again under KSIM_WCACHE_SEEDS="5,17" style hooks, mirroring
   KSIM_TORTURE_SEEDS. *)
let seeds =
  let base = [ 3; 41 ] in
  match Sys.getenv_opt "KSIM_WCACHE_SEEDS" with
  | None | Some "" -> base
  | Some extra ->
      base @ (String.split_on_char ',' extra |> List.filter_map int_of_string_opt)

let block_size = 64
let nblocks = 64
let blk c = Bytes.make block_size c

let ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: unexpected %s" what (Ksim.Errno.to_string e)

let mk_dev () = Kblock.Blockdev.create ~nblocks ~block_size

(* -- write-back semantics --------------------------------------------- *)

let test_ack_is_volatile () =
  let dev = mk_dev () in
  let wc = Kblock.Wcache.create (Kblock.Blockdev.io dev) in
  ok "write" (Kblock.Wcache.write wc 0 (blk 'a'));
  check int "dirty" 1 (Kblock.Wcache.dirty_blocks wc);
  check int "unflushed" 1 (Kblock.Wcache.unflushed_writes wc);
  check int "no base write yet" 0 (Kblock.Blockdev.writes dev);
  check bytes "read hits cache" (blk 'a') (ok "read" (Kblock.Wcache.read wc 0));
  ok "flush" (Kblock.Wcache.flush wc);
  check int "dirty drained" 0 (Kblock.Wcache.dirty_blocks wc);
  check int "unflushed drained" 0 (Kblock.Wcache.unflushed_writes wc);
  check int "base write landed" 1 (Kblock.Blockdev.writes dev);
  check bytes "durable" (blk 'a') (ok "read" (Kblock.Blockdev.read dev 0))

let test_capacity_eviction () =
  let dev = mk_dev () in
  let wc = Kblock.Wcache.create ~capacity:2 (Kblock.Blockdev.io dev) in
  ok "w0" (Kblock.Wcache.write wc 0 (blk 'a'));
  ok "w1" (Kblock.Wcache.write wc 1 (blk 'b'));
  ok "w2" (Kblock.Wcache.write wc 2 (blk 'c'));
  check int "one writeback" 1 (Kblock.Wcache.writebacks wc);
  check int "dirty stays bounded" 2 (Kblock.Wcache.dirty_blocks wc);
  (* FIFO victim: block 0 was destaged, but it is still volatile — no
     flush has closed the epoch. *)
  check int "epoch keeps all three" 3 (Kblock.Wcache.unflushed_writes wc);
  check bytes "evicted readable" (blk 'a') (ok "read" (Kblock.Wcache.read wc 0))

let test_crash_drops_unflushed () =
  let dev = mk_dev () in
  let wc = Kblock.Wcache.create (Kblock.Blockdev.io dev) in
  ok "w" (Kblock.Wcache.write wc 0 (blk 'a'));
  ok "flush" (Kblock.Wcache.flush wc);
  ok "w2" (Kblock.Wcache.write wc 0 (blk 'b'));
  Kblock.Wcache.crash wc;
  check int "nothing dirty" 0 (Kblock.Wcache.dirty_blocks wc);
  check int "nothing unflushed" 0 (Kblock.Wcache.unflushed_writes wc);
  check bytes "flushed content survives" (blk 'a') (ok "read" (Kblock.Wcache.read wc 0))

(* -- crash-surface enumeration ---------------------------------------- *)

(* Three unflushed writes, one an overwrite: subsets in any order reach
   six distinct images (block 0 ∈ {untouched, 'a', 'c'} × block 1 ∈
   {untouched, 'b'}), and one of them — old content on block 0 {e with}
   the later write surviving elsewhere — only a reordering can produce. *)
let test_residues_exhaustive_with_reorderings () =
  let dev = mk_dev () in
  let wc = Kblock.Wcache.create (Kblock.Blockdev.io dev) in
  ok "w0a" (Kblock.Wcache.write wc 0 (blk 'a'));
  ok "w1b" (Kblock.Wcache.write wc 1 (blk 'b'));
  ok "w0c" (Kblock.Wcache.write wc 0 (blk 'c'));
  let residues = Kblock.Wcache.crash_residues wc ~limit:64 in
  check int "six distinct images" 6 (List.length residues);
  (* Crash is not a prefix of the write sequence: some surviving image
     skips the oldest write while keeping a later one. *)
  let non_prefix r =
    r <> []
    && not (List.exists (fun (e : Kblock.Wcache.entry) -> e.data.[0] = 'a') r)
  in
  check bool "a non-prefix residue exists" true (List.exists non_prefix residues)

let test_fua_in_every_residue () =
  let dev = mk_dev () in
  let wc = Kblock.Wcache.create (Kblock.Blockdev.io dev) in
  ok "w0" (Kblock.Wcache.write wc 0 (blk 'a'));
  ok "fua1" (Kblock.Wcache.write_fua wc 1 (blk 'b'));
  check int "fua counted" 1 (Kblock.Wcache.fua_writes wc);
  let residues = Kblock.Wcache.crash_residues wc ~limit:64 in
  check bool "residues exist" true (residues <> []);
  List.iter
    (fun r ->
      check bool "fua write survives every crash" true
        (List.exists (fun (e : Kblock.Wcache.entry) -> e.blkno = 1) r))
    residues

let test_take_durable () =
  let dev = mk_dev () in
  let wc = Kblock.Wcache.create (Kblock.Blockdev.io dev) in
  ok "w0" (Kblock.Wcache.write wc 0 (blk 'a'));
  ok "w1" (Kblock.Wcache.write wc 1 (blk 'b'));
  ok "flush" (Kblock.Wcache.flush wc);
  let durable = Kblock.Wcache.take_durable wc in
  check (Alcotest.list Alcotest.int) "closed epoch, oldest first" [ 0; 1 ]
    (List.map (fun (e : Kblock.Wcache.entry) -> e.blkno) durable);
  check int "window cleared" 0 (List.length (Kblock.Wcache.take_durable wc));
  (* With nothing volatile and nothing retained, the only image is the
     media as-is. *)
  check
    (Alcotest.list (Alcotest.list Alcotest.int))
    "single empty residue"
    [ [] ]
    (List.map
       (List.map (fun (e : Kblock.Wcache.entry) -> e.blkno))
       (Kblock.Wcache.crash_residues wc ~limit:8))

(* -- barrier-discipline audit ------------------------------------------ *)

let test_audit_flags_barrier_free_dependency () =
  let dev = mk_dev () in
  let wc = Kblock.Wcache.create (Kblock.Blockdev.io dev) in
  ok "w0" (Kblock.Wcache.write wc 0 (blk 'a'));
  check bytes "read back unflushed" (blk 'a') (ok "read" (Kblock.Wcache.read wc 0));
  ok "w1" (Kblock.Wcache.write wc 1 (blk 'b'));
  check int "violation" 1 (Kblock.Wcache.ordering_violations wc);
  (match Kblock.Wcache.audit wc with
  | [ v ] ->
      check int "read block" 0 v.Kblock.Wcache.v_blkno;
      check int "dependent write" 1 v.Kblock.Wcache.v_write_blkno
  | vs -> Alcotest.failf "expected one violation, got %d" (List.length vs));
  (* Same shape with an intervening barrier: clean. *)
  let wc2 = Kblock.Wcache.create (Kblock.Blockdev.io (mk_dev ())) in
  ok "w0" (Kblock.Wcache.write wc2 0 (blk 'a'));
  ignore (Kblock.Wcache.read wc2 0);
  ok "flush" (Kblock.Wcache.flush wc2);
  ok "w1" (Kblock.Wcache.write wc2 1 (blk 'b'));
  check int "flush clears the taint" 0 (Kblock.Wcache.ordering_violations wc2);
  (* Overwriting the block just read is not a dependency on another
     block: an in-place update pattern, not a barrier bug. *)
  let wc3 = Kblock.Wcache.create (Kblock.Blockdev.io (mk_dev ())) in
  ok "w0" (Kblock.Wcache.write wc3 0 (blk 'a'));
  ignore (Kblock.Wcache.read wc3 0);
  ok "w0'" (Kblock.Wcache.write wc3 0 (blk 'b'));
  check int "overwrite exempt" 0 (Kblock.Wcache.ordering_violations wc3)

(* Drive the rawlog exhibit over a cache named after its file — the
   dependent-write specimen must trip the runtime audit, and the export
   must round-trip through klint's reconciliation reader.  Running this
   under `dune runtest` with KSIM_WCACHE_EXPORT set (as ci.sh does) also
   seeds the violations dump, making the ci reconciliation stage
   non-vacuous. *)
let test_rawlog_reconciliation_fixture () =
  let dev = mk_dev () in
  let wc = Kblock.Wcache.create ~name:"rawlog_unsafe" (Kblock.Blockdev.io dev) in
  let log = Kfs.Rawlog_unsafe.attach (Kblock.Wcache.io wc) in
  ok "chained" (Kfs.Rawlog_unsafe.append_chained log (blk 'a') (blk 'b'));
  check int "two records" 2 (Kfs.Rawlog_unsafe.records log);
  check bool "the specimen trips the runtime audit" true
    (Kblock.Wcache.ordering_violations wc > 0);
  ok "commit (volatile ack)" (Kfs.Rawlog_unsafe.commit log);
  (match Kblock.Wcache.audit wc with
  | v :: _ ->
      check int "read-back block" 1 v.Kblock.Wcache.v_blkno;
      check int "dependent write block" 2 v.Kblock.Wcache.v_write_blkno
  | [] -> Alcotest.fail "audit empty");
  (* wire format: what the at_exit export writes, klint's reader parses *)
  let path = Filename.temp_file "wcache_viol" ".txt" in
  Kblock.Wcache.append_violations_to_file wc ~path;
  (match Klint.Kdur.read_wcache_violations path with
  | Ok (v :: _ as vs) ->
      check int "every audit entry exported"
        (List.length (Kblock.Wcache.audit wc))
        (List.length vs);
      check Alcotest.string "cache name on the wire" "rawlog_unsafe" v.Klint.Kdur.cache;
      check int "read-back block on the wire" 1 v.Klint.Kdur.v_blkno;
      check int "dependent write block on the wire" 2 v.Klint.Kdur.v_write_blkno
  | Ok [] -> Alcotest.fail "no violations exported"
  | Error msg -> Alcotest.fail msg);
  Sys.remove path

(* -- failpoints --------------------------------------------------------- *)

let test_flush_dropped_failpoint () =
  let dev = mk_dev () in
  let fp = Ksim.Failpoint.create ~trace:(Ksim.Ktrace.create ()) ~seed:7 () in
  let wc = Kblock.Wcache.create ~name:"wc" ~fp (Kblock.Blockdev.io dev) in
  Ksim.Failpoint.configure fp "wc.flush-dropped" ~enabled:true ~probability:1.0 ();
  ok "w" (Kblock.Wcache.write wc 0 (blk 'a'));
  ok "lying flush" (Kblock.Wcache.flush wc);
  check int "flush-drop counted" 1 (Kblock.Wcache.flush_drops wc);
  check int "still volatile" 1 (Kblock.Wcache.unflushed_writes wc);
  check int "nothing landed" 0 (Kblock.Blockdev.writes dev);
  Ksim.Failpoint.configure fp "wc.flush-dropped" ~enabled:false ();
  ok "honest flush" (Kblock.Wcache.flush wc);
  check int "drained" 0 (Kblock.Wcache.unflushed_writes wc);
  check bytes "durable now" (blk 'a') (ok "read" (Kblock.Blockdev.read dev 0))

let test_writeback_reorder_failpoint () =
  let dev = mk_dev () in
  let fp = Ksim.Failpoint.create ~trace:(Ksim.Ktrace.create ()) ~seed:7 () in
  let wc = Kblock.Wcache.create ~name:"wc" ~capacity:2 ~fp ~seed:5 (Kblock.Blockdev.io dev) in
  Ksim.Failpoint.configure fp "wc.writeback-reorder" ~enabled:true ~probability:1.0 ();
  for i = 0 to 7 do
    ok "w" (Kblock.Wcache.write wc i (blk (Char.chr (Char.code 'a' + i))))
  done;
  check int "evictions happened" 6 (Kblock.Wcache.writebacks wc);
  check bool "some destages left FIFO order" true
    (Kblock.Wcache.reordered_writebacks wc > 0)

(* -- satellite: Flakydev torn-write vs a refusing base ------------------ *)

let refusing_io =
  {
    Kblock.Io.nblocks;
    block_size;
    read = (fun _ -> Ok (Bytes.make block_size '\000'));
    write = (fun _ _ -> Error Ksim.Errno.EIO);
    flush = (fun () -> Ok ());
    write_fua = None;
  }

let test_torn_skipped_on_refusing_base () =
  let fp = Ksim.Failpoint.create ~trace:(Ksim.Ktrace.create ()) ~seed:3 () in
  let flaky = Kblock.Flakydev.create ~fp refusing_io in
  Ksim.Failpoint.configure fp "flaky.torn-write" ~enabled:true ~probability:1.0 ();
  (match (Kblock.Flakydev.io flaky).Kblock.Io.write 0 (blk 'a') with
  | Error Ksim.Errno.EIO -> ()
  | _ -> Alcotest.fail "torn draw must still error");
  check int "nothing landed => not torn" 0 (Kblock.Flakydev.torn_writes flaky);
  check int "counted separately" 1 (Kblock.Flakydev.torn_skipped flaky);
  check int "still an injected fault" 1 (Kblock.Flakydev.injected flaky);
  (* Same draw over a working base is a real torn write. *)
  let fp2 = Ksim.Failpoint.create ~trace:(Ksim.Ktrace.create ()) ~seed:3 () in
  let flaky2 = Kblock.Flakydev.create ~fp:fp2 (Kblock.Blockdev.io (mk_dev ())) in
  Ksim.Failpoint.configure fp2 "flaky.torn-write" ~enabled:true ~probability:1.0 ();
  (match (Kblock.Flakydev.io flaky2).Kblock.Io.write 0 (blk 'a') with
  | Error Ksim.Errno.EIO -> ()
  | _ -> Alcotest.fail "torn write must error");
  check int "landed => torn" 1 (Kblock.Flakydev.torn_writes flaky2);
  check int "not skipped" 0 (Kblock.Flakydev.torn_skipped flaky2)

let test_torn_skipped_in_nested_down_window () =
  let fp = Ksim.Failpoint.create ~trace:(Ksim.Ktrace.create ()) ~seed:3 () in
  let dev = mk_dev () in
  let inner = Kblock.Flakydev.create ~name:"inner" ~fp (Kblock.Blockdev.io dev) in
  (* One inner op up (the torn branch's old-content read), then down: the
     torn-prefix write itself lands in the down window. *)
  Kblock.Flakydev.set_availability inner ~up:1 ~down:1000;
  let outer = Kblock.Flakydev.create ~name:"outer" ~fp (Kblock.Flakydev.io inner) in
  Ksim.Failpoint.configure fp "outer.torn-write" ~enabled:true ~probability:1.0 ();
  (match (Kblock.Flakydev.io outer).Kblock.Io.write 0 (blk 'a') with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "write through a down window must fail");
  check int "down window refused the tear" 0 (Kblock.Flakydev.torn_writes outer);
  check int "skip recorded" 1 (Kblock.Flakydev.torn_skipped outer);
  check int "base media untouched" 0 (Kblock.Blockdev.writes dev)

(* -- satellite: Resilient flush-path parity ----------------------------- *)

(* An io whose chosen operation fails with a transient EIO the first
   [fails] times it is called, then works. *)
let sometimes_failing ~fails which =
  let dev = mk_dev () in
  let base = Kblock.Blockdev.io dev in
  let left = ref fails in
  let gate f = if !left > 0 then (decr left; Error Ksim.Errno.EIO) else f () in
  {
    base with
    Kblock.Io.write =
      (fun b d -> if which = `Write then gate (fun () -> base.Kblock.Io.write b d)
                  else base.Kblock.Io.write b d);
    flush =
      (fun () -> if which = `Flush then gate base.Kblock.Io.flush
                 else base.Kblock.Io.flush ());
    write_fua = None;
  }

let test_flush_retry_parity () =
  let mk which =
    Kblock.Resilient.create ~max_attempts:4 ~backoff_base:100 ~backoff_cap:10_000
      (sometimes_failing ~fails:2 which)
  in
  let rf = mk `Flush and rw = mk `Write in
  ok "flush recovers" (Kblock.Resilient.flush rf);
  ok "write recovers" (Kblock.Resilient.write rw 0 (blk 'a'));
  check int "same retries" (Kblock.Resilient.retries rw) (Kblock.Resilient.retries rf);
  check int "retried twice" 2 (Kblock.Resilient.retries rf);
  check int "same recovered accounting" (Kblock.Resilient.recovered_ops rw)
    (Kblock.Resilient.recovered_ops rf);
  check int "one recovered op" 1 (Kblock.Resilient.recovered_ops rf);
  check int "same backoff curve" (Kblock.Resilient.simulated_ns rw)
    (Kblock.Resilient.simulated_ns rf);
  (* Budget exhaustion on the flush path is the same permanent verdict. *)
  let rp =
    Kblock.Resilient.create ~max_attempts:3 (sometimes_failing ~fails:max_int `Flush)
  in
  (match Kblock.Resilient.flush rp with
  | Error Ksim.Errno.EIO -> ()
  | _ -> Alcotest.fail "exhausted flush must propagate EIO");
  check int "permanent verdict" 1 (Kblock.Resilient.permanent_failures rp)

let test_permanent_flush_flips_readonly () =
  let dev = mk_dev () in
  let base = Kblock.Blockdev.io dev in
  let fail_flush = ref false in
  let io_stub =
    {
      base with
      Kblock.Io.flush =
        (fun () -> if !fail_flush then Error Ksim.Errno.EIO else base.Kblock.Io.flush ());
      write_fua = None;
    }
  in
  let r = Kblock.Resilient.create ~max_attempts:3 io_stub in
  let geometry =
    { Kfs.Journalfs.nblocks; block_size; jblocks = 16; ninodes = 8 }
  in
  let fs =
    Kfs.Journalfs.mkfs_on ~geometry ~io:(Kblock.Resilient.io r) Kfs.Journalfs.Journaled dev
  in
  let p = Kspec.Fs_spec.path_of_string in
  (match Kfs.Journalfs.apply fs (Kspec.Fs_spec.Create (p "/f")) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "setup create: %s" (Ksim.Errno.to_string e));
  fail_flush := true;
  (match
     Kfs.Journalfs.apply fs
       (Kspec.Fs_spec.Write { file = p "/f"; off = 0; data = "doomed" })
   with
  | Error Ksim.Errno.EIO -> ()
  | r -> Alcotest.failf "expected EIO, got %a" Kspec.Fs_spec.pp_result r);
  check bool "errors=remount-ro latched" true (Kfs.Journalfs.is_readonly fs);
  check bool "budget exhausted" true (Kblock.Resilient.permanent_failures r > 0);
  fail_flush := false;
  (match
     Kfs.Journalfs.apply fs
       (Kspec.Fs_spec.Write { file = p "/f"; off = 0; data = "late" })
   with
  | Error Ksim.Errno.EROFS -> ()
  | r -> Alcotest.failf "expected EROFS, got %a" Kspec.Fs_spec.pp_result r)

(* -- cache-loss torture ------------------------------------------------- *)

(* ALICE-style gate, hand-rolled (the kharness sweep below re-checks the
   same surface against the full spec): journalfs over the cache with
   writeback reordering forced on, a versioned key file, and at every
   sweep each crash residue is materialized over the durable media
   snapshot and mounted — the mount must parse (journal checksums make
   any residue recoverable) and must read the key at or past the last
   acknowledged version.  In Journaled mode every successful Write
   committed through two real barriers, so acked means durable even
   though most of the epoch is still volatile. *)
let torture_geometry =
  { Kfs.Journalfs.nblocks = 512; block_size = 128; jblocks = 48; ninodes = 16 }

let cache_loss_torture seed =
  let g = torture_geometry in
  let dev = Kblock.Blockdev.create ~nblocks:g.nblocks ~block_size:g.block_size in
  let fp = Ksim.Failpoint.create ~trace:(Ksim.Ktrace.create ()) ~seed () in
  let wc = Kblock.Wcache.create ~name:"wc" ~capacity:8 ~fp ~seed (Kblock.Blockdev.io dev) in
  Ksim.Failpoint.configure fp "wc.writeback-reorder" ~enabled:true ~probability:1.0 ();
  let fs = Kfs.Journalfs.mkfs_on ~geometry:g ~io:(Kblock.Wcache.io wc) Kfs.Journalfs.Journaled dev in
  ok "post-mkfs barrier" (Kblock.Wcache.flush wc);
  ignore (Kblock.Wcache.take_durable wc);
  let media0 = Kblock.Blockdev.snapshot_media dev in
  let apply_entry media (e : Kblock.Wcache.entry) =
    media.(e.blkno) <- Bytes.of_string e.data
  in
  let p = Kspec.Fs_spec.path_of_string in
  let key = "/k" in
  let version = ref 0 and acked = ref 0 and acked_floor = ref 0 in
  let rng = Ksim.Rng.of_int (seed * 7919) in
  let images = ref 0 in
  (* The residues span every crash instant since the previous sweep
     (take_durable resets the window), so the durability floor is the
     version acked {e at the window's start} — anything acked mid-window
     may legally be missing from an early-frame image. *)
  let sweep () =
    List.iter
      (fun residue ->
        incr images;
        let media = Array.map Bytes.copy media0 in
        List.iter (apply_entry media) residue;
        let dev' = Kblock.Blockdev.of_media ~block_size:g.block_size media in
        let fs' = Kfs.Journalfs.mount ~geometry:g Kfs.Journalfs.Journaled dev' in
        check bool "residue mounts clean" false (Kfs.Journalfs.is_corrupt fs');
        if !acked_floor > 0 then
          match
            Kfs.Journalfs.apply fs' (Kspec.Fs_spec.Read { file = p key; off = 0; len = 9 })
          with
          | Ok (Kspec.Fs_spec.Data s) when String.length s = 9 && s.[0] = 'v' ->
              let v = int_of_string (String.sub s 1 8) in
              if v < !acked_floor then
                Alcotest.failf "seed %d: acked v%d, residue recovered v%d" seed
                  !acked_floor v
          | r ->
              Alcotest.failf "seed %d: acked v%d unreadable after crash: %a" seed
                !acked_floor Kspec.Fs_spec.pp_result r)
      (Kblock.Wcache.crash_residues wc ~limit:8);
    List.iter (apply_entry media0) (Kblock.Wcache.take_durable wc);
    acked_floor := !acked
  in
  for i = 1 to 120 do
    (match Ksim.Rng.int rng 5 with
    | 0 | 1 | 2 ->
        incr version;
        let data = Printf.sprintf "v%08d:%s" !version (String.make 16 'x') in
        (match Kfs.Journalfs.apply fs (Kspec.Fs_spec.Write { file = p key; off = 0; data }) with
        | Ok _ -> acked := !version
        | Error Ksim.Errno.ENOENT -> (
            match Kfs.Journalfs.apply fs (Kspec.Fs_spec.Create (p key)) with
            | Ok _ | Error _ -> decr version)
        | Error e -> Alcotest.failf "seed %d write: %s" seed (Ksim.Errno.to_string e))
    | 3 ->
        let f = Printf.sprintf "/c%d" (Ksim.Rng.int rng 4) in
        ignore (Kfs.Journalfs.apply fs (Kspec.Fs_spec.Create (p f)))
    | _ -> ignore (Kfs.Journalfs.apply fs Kspec.Fs_spec.Fsync));
    if i mod 10 = 0 then sweep ()
  done;
  ignore (Kfs.Journalfs.apply fs Kspec.Fs_spec.Fsync);
  sweep ();
  check bool "torture enumerated images" true (!images > 20);
  check int "no false barrier alarms" 0 (Kblock.Wcache.ordering_violations wc);
  (* The crash-at-quiescence gate: everything drained, a fresh mount of
     the raw device must read the latest acked version exactly. *)
  ok "final barrier" (Kblock.Wcache.flush wc);
  let fs' = Kfs.Journalfs.mount ~geometry:g Kfs.Journalfs.Journaled dev in
  check bool "final mount clean" false (Kfs.Journalfs.is_corrupt fs');
  match Kfs.Journalfs.apply fs' (Kspec.Fs_spec.Read { file = p key; off = 0; len = 9 }) with
  | Ok (Kspec.Fs_spec.Data s) when String.length s = 9 && s.[0] = 'v' ->
      check int "latest ack durable" !acked (int_of_string (String.sub s 1 8))
  | r -> Alcotest.failf "seed %d: final mount lost /k: %a" seed Kspec.Fs_spec.pp_result r

let test_cache_loss_torture () = List.iter cache_loss_torture seeds

(* The registered harnesses over the same hostile disk, full refinement
   check, crash enumeration at every op. *)
let test_harness_sweep () =
  List.iter
    (fun seed ->
      let trace = Kharness.recorded_trace ~target_ops:150 ~seed () in
      List.iter
        (fun (e : Kharness.entry) ->
          let config =
            { Kspec.Krefine.default_config with seed; images_per_op = 4; crash_every = 1 }
          in
          let cov = Kharness.run ~config e trace in
          if not (Kspec.Krefine.is_clean cov) then
            Alcotest.failf "seed %d: %s diverged:@.%a" seed e.Kharness.hname
              Kspec.Krefine.pp_coverage cov)
        (Kharness.all ()))
    seeds

let () =
  Alcotest.run "wcache"
    [
      ( "semantics",
        [
          Alcotest.test_case "ack is volatile until flush" `Quick test_ack_is_volatile;
          Alcotest.test_case "capacity eviction" `Quick test_capacity_eviction;
          Alcotest.test_case "crash drops unflushed" `Quick test_crash_drops_unflushed;
        ] );
      ( "residues",
        [
          Alcotest.test_case "exhaustive with reorderings" `Quick
            test_residues_exhaustive_with_reorderings;
          Alcotest.test_case "fua survives every crash" `Quick test_fua_in_every_residue;
          Alcotest.test_case "take_durable closes the window" `Quick test_take_durable;
        ] );
      ( "audit",
        [
          Alcotest.test_case "rawlog exhibit: audit + export round-trip" `Quick
            test_rawlog_reconciliation_fixture;
          Alcotest.test_case "barrier-free dependency flagged" `Quick
            test_audit_flags_barrier_free_dependency;
        ] );
      ( "failpoints",
        [
          Alcotest.test_case "flush-dropped" `Quick test_flush_dropped_failpoint;
          Alcotest.test_case "writeback-reorder" `Quick test_writeback_reorder_failpoint;
        ] );
      ( "flaky",
        [
          Alcotest.test_case "torn skipped on refusing base" `Quick
            test_torn_skipped_on_refusing_base;
          Alcotest.test_case "torn skipped in nested down window" `Quick
            test_torn_skipped_in_nested_down_window;
        ] );
      ( "resilient",
        [
          Alcotest.test_case "flush retry parity" `Quick test_flush_retry_parity;
          Alcotest.test_case "permanent flush flips readonly" `Quick
            test_permanent_flush_flips_readonly;
        ] );
      ( "torture",
        [
          Alcotest.test_case "cache-loss torture" `Quick test_cache_loss_torture;
          Alcotest.test_case "harness sweep" `Quick test_harness_sweep;
        ] );
    ]
