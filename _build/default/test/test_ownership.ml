(* Tests for the ownership checker: the three sharing models, violation
   detection, contracts, and the copying message baseline. *)

let check = Alcotest.check
let fail = Alcotest.fail

let kind_of_violation (v : Ownership.Checker.violation) =
  Ownership.Checker.violation_kind_to_string v.Ownership.Checker.kind

let expect_violation name f =
  match f () with
  | _ -> fail ("expected Violation " ^ name)
  | exception Ownership.Checker.Violation v -> check Alcotest.string name name (kind_of_violation v)

(* Well-behaved clients ------------------------------------------------------ *)

let test_alloc_write_read_free () =
  let ck = Ownership.Checker.create () in
  let cap = Ownership.Checker.alloc ck ~holder:"m" ~size:8 in
  Ownership.Checker.write ck cap ~off:0 (Bytes.of_string "abc");
  check Alcotest.string "read back" "abc"
    (Bytes.to_string (Ownership.Checker.read ck cap ~off:0 ~len:3));
  check Alcotest.int "size" 8 (Ownership.Checker.size ck cap);
  Ownership.Checker.free ck cap;
  check Alcotest.int "no violations" 0 (Ownership.Checker.violation_count ck);
  check Alcotest.bool "no leaks" true (Ownership.Checker.check_leaks ck)

let test_fill () =
  let ck = Ownership.Checker.create () in
  let cap = Ownership.Checker.alloc ck ~holder:"m" ~size:4 in
  Ownership.Checker.fill ck cap 'x';
  check Alcotest.string "filled" "xxxx"
    (Bytes.to_string (Ownership.Checker.read ck cap ~off:0 ~len:4));
  Ownership.Checker.free ck cap

(* Model 1: transfer ---------------------------------------------------------- *)

let test_transfer_moves_rights () =
  let ck = Ownership.Checker.create () in
  let cap = Ownership.Checker.alloc ck ~holder:"caller" ~size:4 in
  let callee_cap = Ownership.Checker.transfer ck cap ~to_:"callee" in
  Ownership.Checker.write ck callee_cap ~off:0 (Bytes.of_string "ok");
  expect_violation "read-with-revoked-cap" (fun () ->
      Ownership.Checker.read ck cap ~off:0 ~len:1);
  Ownership.Checker.free ck callee_cap;
  check Alcotest.bool "callee freed fine" true (Ownership.Checker.live_regions ck = [])

let test_transfer_then_caller_free_is_violation () =
  let ck = Ownership.Checker.create () in
  let cap = Ownership.Checker.alloc ck ~holder:"caller" ~size:4 in
  let _callee = Ownership.Checker.transfer ck cap ~to_:"callee" in
  expect_violation "free-without-ownership" (fun () -> Ownership.Checker.free ck cap)

let test_double_transfer_is_violation () =
  let ck = Ownership.Checker.create () in
  let cap = Ownership.Checker.alloc ck ~holder:"a" ~size:4 in
  let _b = Ownership.Checker.transfer ck cap ~to_:"b" in
  expect_violation "free-without-ownership" (fun () ->
      ignore (Ownership.Checker.transfer ck cap ~to_:"c"))

(* Model 2: exclusive lend ------------------------------------------------------ *)

let test_exclusive_lend_borrower_writes () =
  let ck = Ownership.Checker.create () in
  let cap = Ownership.Checker.alloc ck ~holder:"fs" ~size:4 in
  Ownership.Checker.lend_exclusive ck cap ~to_:"client" ~f:(fun b ->
      Ownership.Checker.write ck b ~off:0 (Bytes.of_string "data"));
  check Alcotest.string "owner sees the write" "data"
    (Bytes.to_string (Ownership.Checker.read ck cap ~off:0 ~len:4));
  Ownership.Checker.free ck cap;
  check Alcotest.int "clean run" 0 (Ownership.Checker.violation_count ck)

let test_exclusive_lend_caller_locked_out () =
  let ck = Ownership.Checker.create () in
  let cap = Ownership.Checker.alloc ck ~holder:"fs" ~size:4 in
  Ownership.Checker.lend_exclusive ck cap ~to_:"client" ~f:(fun _b ->
      expect_violation "read-with-revoked-cap" (fun () ->
          Ownership.Checker.read ck cap ~off:0 ~len:1));
  Ownership.Checker.free ck cap

let test_exclusive_borrower_cannot_free () =
  let ck = Ownership.Checker.create () in
  let cap = Ownership.Checker.alloc ck ~holder:"fs" ~size:4 in
  Ownership.Checker.lend_exclusive ck cap ~to_:"client" ~f:(fun b ->
      expect_violation "free-while-lent" (fun () -> Ownership.Checker.free ck b));
  Ownership.Checker.free ck cap

let test_escaped_borrow_is_dead () =
  let ck = Ownership.Checker.create () in
  let cap = Ownership.Checker.alloc ck ~holder:"fs" ~size:4 in
  let escaped = Ownership.Checker.lend_exclusive ck cap ~to_:"client" ~f:(fun b -> b) in
  expect_violation "read-with-revoked-cap" (fun () ->
      Ownership.Checker.read ck escaped ~off:0 ~len:1);
  Ownership.Checker.free ck cap

let test_exclusive_lend_restores_on_exception () =
  let ck = Ownership.Checker.create () in
  let cap = Ownership.Checker.alloc ck ~holder:"fs" ~size:4 in
  (match
     Ownership.Checker.lend_exclusive ck cap ~to_:"client" ~f:(fun _ -> failwith "boom")
   with
  | _ -> fail "expected exception"
  | exception Failure _ -> ());
  Ownership.Checker.write ck cap ~off:0 (Bytes.of_string "ok");
  Ownership.Checker.free ck cap

(* Model 3: shared lend ---------------------------------------------------------- *)

let test_shared_lend_all_read () =
  let ck = Ownership.Checker.create () in
  let cap = Ownership.Checker.alloc ck ~holder:"fs" ~size:4 in
  Ownership.Checker.write ck cap ~off:0 (Bytes.of_string "abcd");
  Ownership.Checker.lend_shared ck cap ~to_:[ "r1"; "r2" ] ~f:(fun readers ->
      List.iter
        (fun r ->
          check Alcotest.string "reader sees data" "abcd"
            (Bytes.to_string (Ownership.Checker.read ck r ~off:0 ~len:4)))
        readers;
      check Alcotest.string "owner reads too" "ab"
        (Bytes.to_string (Ownership.Checker.read ck cap ~off:0 ~len:2)));
  Ownership.Checker.free ck cap;
  check Alcotest.int "clean" 0 (Ownership.Checker.violation_count ck)

let test_shared_lend_nobody_writes () =
  let ck = Ownership.Checker.create () in
  let cap = Ownership.Checker.alloc ck ~holder:"fs" ~size:4 in
  Ownership.Checker.lend_shared ck cap ~to_:[ "r" ] ~f:(fun readers ->
      let r = List.hd readers in
      expect_violation "write-while-shared" (fun () ->
          Ownership.Checker.write ck r ~off:0 (Bytes.of_string "x"));
      expect_violation "write-while-shared" (fun () ->
          Ownership.Checker.write ck cap ~off:0 (Bytes.of_string "y")));
  Ownership.Checker.free ck cap

let test_shared_lend_free_is_violation () =
  let ck = Ownership.Checker.create () in
  let cap = Ownership.Checker.alloc ck ~holder:"fs" ~size:4 in
  Ownership.Checker.lend_shared ck cap ~to_:[ "r" ] ~f:(fun _ ->
      expect_violation "free-while-lent" (fun () -> Ownership.Checker.free ck cap));
  Ownership.Checker.free ck cap

(* Lifecycle violations ------------------------------------------------------------ *)

let test_use_after_free () =
  let ck = Ownership.Checker.create () in
  let cap = Ownership.Checker.alloc ck ~holder:"m" ~size:4 in
  Ownership.Checker.free ck cap;
  expect_violation "use-after-free" (fun () -> Ownership.Checker.read ck cap ~off:0 ~len:1)

let test_double_free () =
  let ck = Ownership.Checker.create () in
  let cap = Ownership.Checker.alloc ck ~holder:"m" ~size:4 in
  Ownership.Checker.free ck cap;
  expect_violation "double-free" (fun () -> Ownership.Checker.free ck cap)

let test_out_of_bounds () =
  let ck = Ownership.Checker.create () in
  let cap = Ownership.Checker.alloc ck ~holder:"m" ~size:4 in
  expect_violation "out-of-bounds" (fun () ->
      ignore (Ownership.Checker.read ck cap ~off:2 ~len:4));
  Ownership.Checker.free ck cap

let test_leak_detection () =
  let ck = Ownership.Checker.create ~strict:false () in
  let _cap = Ownership.Checker.alloc ck ~holder:"leaky" ~size:4 in
  check Alcotest.bool "leak found" false (Ownership.Checker.check_leaks ck);
  let leaks =
    List.filter
      (fun (v : Ownership.Checker.violation) -> v.Ownership.Checker.kind = Ownership.Checker.Leak)
      (Ownership.Checker.violations ck)
  in
  check Alcotest.int "one leak" 1 (List.length leaks)

let test_nonstrict_records () =
  let ck = Ownership.Checker.create ~strict:false () in
  let cap = Ownership.Checker.alloc ck ~holder:"m" ~size:4 in
  Ownership.Checker.free ck cap;
  ignore (Ownership.Checker.read ck cap ~off:0 ~len:1);
  check Alcotest.int "recorded, not raised" 1 (Ownership.Checker.violation_count ck)

(* QCheck: a random well-behaved client never triggers violations. *)
let gen_script = QCheck2.Gen.(list_size (int_range 1 40) (int_range 0 4))

let prop_well_behaved_client_clean =
  QCheck2.Test.make ~name:"well-behaved clients never violate" ~count:200 gen_script
    (fun script ->
      let ck = Ownership.Checker.create ~strict:true () in
      let live = ref [] in
      let step op =
        match (op, !live) with
        | 0, _ ->
            let cap = Ownership.Checker.alloc ck ~holder:"client" ~size:16 in
            live := cap :: !live
        | 1, cap :: _ -> Ownership.Checker.write ck cap ~off:0 (Bytes.of_string "abc")
        | 2, cap :: _ -> ignore (Ownership.Checker.read ck cap ~off:0 ~len:8)
        | 3, cap :: rest ->
            Ownership.Checker.lend_exclusive ck cap ~to_:"callee" ~f:(fun b ->
                Ownership.Checker.write ck b ~off:0 (Bytes.of_string "z"));
            live := cap :: rest
        | 4, cap :: rest ->
            Ownership.Checker.free ck cap;
            live := rest
        | _, [] -> ()
        | _ -> ()
      in
      List.iter step script;
      List.iter (fun cap -> Ownership.Checker.free ck cap) !live;
      Ownership.Checker.violation_count ck = 0 && Ownership.Checker.check_leaks ck)

(* Message baseline ------------------------------------------------------------- *)

let test_message_copies () =
  let ch = Ownership.Message.create () in
  let payload = Bytes.of_string "hello" in
  Ownership.Message.send ch payload;
  Bytes.set payload 0 'X';
  (match Ownership.Message.recv ch with
  | Some received -> check Alcotest.string "isolated" "hello" (Bytes.to_string received)
  | None -> fail "expected a message");
  check Alcotest.int "bytes copied" 5 (Ownership.Message.bytes_copied ch)

let test_message_call_roundtrip () =
  let ch = Ownership.Message.create () in
  let reply =
    Ownership.Message.call ch (Bytes.of_string "ping") ~f:(fun req ->
        check Alcotest.string "request" "ping" (Bytes.to_string req);
        Bytes.of_string "pong")
  in
  check Alcotest.string "reply" "pong" (Bytes.to_string reply);
  check Alcotest.int "two copies" 8 (Ownership.Message.bytes_copied ch)

let test_message_fifo () =
  let ch = Ownership.Message.create () in
  Ownership.Message.send ch (Bytes.of_string "1");
  Ownership.Message.send ch (Bytes.of_string "2");
  check Alcotest.int "pending" 2 (Ownership.Message.pending ch);
  check Alcotest.(option string) "first" (Some "1")
    (Option.map Bytes.to_string (Ownership.Message.recv ch));
  check Alcotest.(option string) "second" (Some "2")
    (Option.map Bytes.to_string (Ownership.Message.recv ch));
  check Alcotest.(option string) "empty" None
    (Option.map Bytes.to_string (Ownership.Message.recv ch))

(* Contracts --------------------------------------------------------------------- *)

let fs_like_contract =
  Ownership.Contract.v ~interface:"test_iface"
    [
      Ownership.Contract.op ~name:"consume" [ ("buf", Ownership.Contract.Move) ];
      Ownership.Contract.op ~name:"fill" [ ("buf", Ownership.Contract.Borrow_exclusive) ];
      Ownership.Contract.op ~name:"scan"
        [ ("a", Ownership.Contract.Borrow_shared); ("b", Ownership.Contract.Borrow_shared) ];
    ]

let test_contract_move () =
  let ck = Ownership.Checker.create () in
  let cap = Ownership.Checker.alloc ck ~holder:"caller" ~size:4 in
  let kept = ref None in
  Ownership.Contract.apply ck fs_like_contract ~op:"consume" ~callee:"svc" ~args:[ cap ]
    ~f:(fun caps -> kept := Some (List.hd caps));
  (match Ownership.Checker.read ck cap ~off:0 ~len:1 with
  | _ -> fail "caller should be locked out"
  | exception Ownership.Checker.Violation _ -> ());
  (match !kept with
  | Some callee_cap -> Ownership.Checker.free ck callee_cap
  | None -> fail "callee cap missing");
  check Alcotest.bool "no leak" true (Ownership.Checker.check_leaks ck)

let test_contract_borrow_ends () =
  let ck = Ownership.Checker.create () in
  let cap = Ownership.Checker.alloc ck ~holder:"caller" ~size:4 in
  Ownership.Contract.apply ck fs_like_contract ~op:"fill" ~callee:"svc" ~args:[ cap ]
    ~f:(fun caps -> Ownership.Checker.write ck (List.hd caps) ~off:0 (Bytes.of_string "ab"));
  check Alcotest.string "caller reads result" "ab"
    (Bytes.to_string (Ownership.Checker.read ck cap ~off:0 ~len:2));
  Ownership.Checker.free ck cap

let test_contract_shared_multi_arg () =
  let ck = Ownership.Checker.create () in
  let a = Ownership.Checker.alloc ck ~holder:"caller" ~size:2 in
  let b = Ownership.Checker.alloc ck ~holder:"caller" ~size:2 in
  Ownership.Contract.apply ck fs_like_contract ~op:"scan" ~callee:"svc" ~args:[ a; b ]
    ~f:(fun caps ->
      List.iter (fun c -> ignore (Ownership.Checker.read ck c ~off:0 ~len:1)) caps);
  Ownership.Checker.free ck a;
  Ownership.Checker.free ck b;
  check Alcotest.int "clean" 0 (Ownership.Checker.violation_count ck)

let test_contract_unknown_op () =
  let ck = Ownership.Checker.create () in
  let cap = Ownership.Checker.alloc ck ~holder:"c" ~size:1 in
  (match
     Ownership.Contract.apply ck fs_like_contract ~op:"nope" ~callee:"svc" ~args:[ cap ]
       ~f:(fun _ -> ())
   with
  | _ -> fail "expected Unknown_op"
  | exception Ownership.Contract.Unknown_op { op; _ } -> check Alcotest.string "op" "nope" op);
  Ownership.Checker.free ck cap

let test_contract_arity () =
  let ck = Ownership.Checker.create () in
  let cap = Ownership.Checker.alloc ck ~holder:"c" ~size:1 in
  (match
     Ownership.Contract.apply ck fs_like_contract ~op:"scan" ~callee:"svc" ~args:[ cap ]
       ~f:(fun _ -> ())
   with
  | _ -> fail "expected Arity_mismatch"
  | exception Ownership.Contract.Arity_mismatch { expected; got; _ } ->
      check Alcotest.int "expected" 2 expected;
      check Alcotest.int "got" 1 got);
  Ownership.Checker.free ck cap

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "ownership"
    [
      ( "basics",
        [
          Alcotest.test_case "alloc/write/read/free" `Quick test_alloc_write_read_free;
          Alcotest.test_case "fill" `Quick test_fill;
        ] );
      ( "model1-transfer",
        [
          Alcotest.test_case "moves rights" `Quick test_transfer_moves_rights;
          Alcotest.test_case "caller free rejected" `Quick
            test_transfer_then_caller_free_is_violation;
          Alcotest.test_case "double transfer rejected" `Quick test_double_transfer_is_violation;
        ] );
      ( "model2-exclusive",
        [
          Alcotest.test_case "borrower writes" `Quick test_exclusive_lend_borrower_writes;
          Alcotest.test_case "caller locked out" `Quick test_exclusive_lend_caller_locked_out;
          Alcotest.test_case "borrower cannot free" `Quick test_exclusive_borrower_cannot_free;
          Alcotest.test_case "escaped borrow dead" `Quick test_escaped_borrow_is_dead;
          Alcotest.test_case "restore on exception" `Quick
            test_exclusive_lend_restores_on_exception;
        ] );
      ( "model3-shared",
        [
          Alcotest.test_case "all parties read" `Quick test_shared_lend_all_read;
          Alcotest.test_case "nobody writes" `Quick test_shared_lend_nobody_writes;
          Alcotest.test_case "free rejected during lend" `Quick test_shared_lend_free_is_violation;
        ] );
      ( "lifecycle",
        Alcotest.test_case "use-after-free" `Quick test_use_after_free
        :: Alcotest.test_case "double free" `Quick test_double_free
        :: Alcotest.test_case "out of bounds" `Quick test_out_of_bounds
        :: Alcotest.test_case "leak detection" `Quick test_leak_detection
        :: Alcotest.test_case "non-strict records" `Quick test_nonstrict_records
        :: qcheck [ prop_well_behaved_client_clean ] );
      ( "message",
        [
          Alcotest.test_case "copies isolate" `Quick test_message_copies;
          Alcotest.test_case "call roundtrip" `Quick test_message_call_roundtrip;
          Alcotest.test_case "fifo" `Quick test_message_fifo;
        ] );
      ( "contract",
        [
          Alcotest.test_case "move" `Quick test_contract_move;
          Alcotest.test_case "borrow ends at return" `Quick test_contract_borrow_ends;
          Alcotest.test_case "shared multi-arg" `Quick test_contract_shared_multi_arg;
          Alcotest.test_case "unknown op" `Quick test_contract_unknown_op;
          Alcotest.test_case "arity mismatch" `Quick test_contract_arity;
        ] );
    ]
