(* End-to-end integration: a booted kernel with several mounted file
   systems, user-level fd traffic, an incremental migration under load,
   and namespace-level invariants across the whole stack. *)

open Kspec

let check = Alcotest.check
let fail = Alcotest.fail
let p = Fs_spec.path_of_string

let result_t : Fs_spec.result Alcotest.testable =
  Alcotest.testable Fs_spec.pp_result Fs_spec.equal_result

(* Boot a kernel: root memfs, /mnt/journal journalfs, /mnt/snap cowfs,
   /mnt/overlay unionfs. *)
let boot () =
  let vfs = Kvfs.Vfs.create () in
  let mount at inst =
    match Kvfs.Vfs.mount vfs ~at:(p at) inst with
    | Ok () -> ()
    | Error e -> fail (Ksim.Errno.to_string e)
  in
  mount "/" (Kvfs.Iface.make (module Kfs.Memfs_typed) ());
  ignore (Kvfs.Vfs.apply vfs (Mkdir (p "/mnt")));
  ignore (Kvfs.Vfs.apply vfs (Mkdir (p "/mnt/journal")));
  ignore (Kvfs.Vfs.apply vfs (Mkdir (p "/mnt/snap")));
  ignore (Kvfs.Vfs.apply vfs (Mkdir (p "/mnt/overlay")));
  mount "/mnt/journal" (Kvfs.Iface.make (module Kfs.Journalfs.Journaled_fs) ());
  mount "/mnt/snap" (Kvfs.Iface.make (module Kfs.Cowfs) ());
  mount "/mnt/overlay" (Kvfs.Iface.make (module Kfs.Unionfs) ());
  vfs

let test_boot_and_cross_mount_traffic () =
  let vfs = boot () in
  check Alcotest.int "four mounts" 4 (List.length (Kvfs.Vfs.mounts vfs));
  List.iter
    (fun dir ->
      let file = dir ^ "/probe" in
      check result_t (file ^ " create") (Ok Fs_spec.Unit) (Kvfs.Vfs.apply vfs (Create (p file)));
      check result_t (file ^ " write") (Ok Fs_spec.Unit)
        (Kvfs.Vfs.apply vfs (Write { file = p file; off = 0; data = "probe:" ^ dir }));
      check result_t (file ^ " read") (Ok (Fs_spec.Data ("probe:" ^ dir)))
        (Kvfs.Vfs.apply vfs (Read { file = p file; off = 0; len = 64 })))
    [ ""; "/mnt/journal"; "/mnt/snap"; "/mnt/overlay" ];
  let st = Kvfs.Vfs.interpret vfs in
  check Alcotest.bool "namespace wf" true (Fs_spec.wf st);
  check Alcotest.bool "journal file visible in namespace" true
    (Fs_spec.Pathmap.mem (p "/mnt/journal/probe") st)

let test_fd_layer_over_boot () =
  let vfs = boot () in
  let fds = Kvfs.File_ops.create vfs in
  let fd =
    match
      Kvfs.File_ops.openf fds
        ~flags:[ Kvfs.File_ops.O_RDWR; Kvfs.File_ops.O_CREAT ]
        "/mnt/journal/log"
    with
    | Ok fd -> fd
    | Error e -> fail (Ksim.Errno.to_string e)
  in
  ignore (Kvfs.File_ops.write fds fd "line1\n");
  ignore (Kvfs.File_ops.write fds fd "line2\n");
  ignore (Kvfs.File_ops.lseek fds fd 0 Kvfs.File_ops.SEEK_SET);
  (match Kvfs.File_ops.read fds fd ~len:64 with
  | Ok data -> check Alcotest.string "both lines" "line1\nline2\n" data
  | Error e -> fail (Ksim.Errno.to_string e));
  (match Kvfs.File_ops.fsync fds with Ok () -> () | Error e -> fail (Ksim.Errno.to_string e));
  ignore (Kvfs.File_ops.close fds fd)

let test_workload_storm_across_mounts () =
  let vfs = boot () in
  (* Rebase a generated trace under each mount point and replay. *)
  let rebase prefix op =
    let re pa = p prefix @ pa in
    match op with
    | Fs_spec.Create pa -> Fs_spec.Create (re pa)
    | Fs_spec.Mkdir pa -> Fs_spec.Mkdir (re pa)
    | Fs_spec.Write { file; off; data } -> Fs_spec.Write { file = re file; off; data }
    | Fs_spec.Read { file; off; len } -> Fs_spec.Read { file = re file; off; len }
    | Fs_spec.Truncate (pa, n) -> Fs_spec.Truncate (re pa, n)
    | Fs_spec.Unlink pa -> Fs_spec.Unlink (re pa)
    | Fs_spec.Rmdir pa -> Fs_spec.Rmdir (re pa)
    | Fs_spec.Rename (a, b) -> Fs_spec.Rename (re a, re b)
    | Fs_spec.Readdir pa -> Fs_spec.Readdir (re pa)
    | Fs_spec.Stat pa -> Fs_spec.Stat (re pa)
    | Fs_spec.Fsync -> Fs_spec.Fsync
  in
  let trace seed = Kfs.Workload.generate ~seed Kfs.Workload.Metadata_heavy ~ops:150 in
  List.iter
    (fun (prefix, seed) ->
      let executed = ref 0 in
      List.iter
        (fun op ->
          ignore (Kvfs.Vfs.apply vfs (rebase prefix op));
          incr executed)
        (trace seed);
      check Alcotest.int (prefix ^ " storm completes") 150 !executed)
    [ ("", 21); ("/mnt/journal", 22); ("/mnt/snap", 23) ];
  check Alcotest.bool "namespace still wf" true (Fs_spec.wf (Kvfs.Vfs.interpret vfs))

let test_migration_under_mounted_kernel () =
  (* Boot a registry-backed kernel, migrate memfs up the ladder, and keep
     serving traffic through the registry's instance after each step. *)
  let registry = Safeos_core.Registry.create () in
  ignore
    (Safeos_core.Registry.register registry ~name:"memfs"
       ~kind:Safeos_core.Registry.File_system ~level:Safeos_core.Level.Modular
       ~iface:Safeos_core.Interface.fs_interface ~loc:430
       ~instance:(Kvfs.Iface.make (module Kfs.Memfs_unsafe.Modular) ())
       ());
  let serve () =
    match Safeos_core.Registry.find registry "memfs" with
    | Some { Safeos_core.Registry.instance = Some inst; _ } ->
        let ok, errs = Kfs.Workload.replay inst Kfs.Workload.smoke in
        check Alcotest.int "smoke ok" (List.length Kfs.Workload.smoke) (ok + errs);
        check Alcotest.int "no errors" 0 errs
    | _ -> fail "no live instance"
  in
  serve ();
  List.iter
    (fun step ->
      let outcome = Safeos_core.Roadmap.run_step ~validation_ops:100 registry step in
      check Alcotest.bool "step succeeded" true (Safeos_core.Roadmap.succeeded outcome);
      serve ())
    (Safeos_core.Roadmap.memfs_ladder ());
  match Safeos_core.Registry.find registry "memfs" with
  | Some e ->
      check Alcotest.string "final level" "verified"
        (Safeos_core.Level.to_string e.Safeos_core.Registry.level)
  | None -> fail "memfs missing"

let test_consistent_stages_same_results () =
  (* All four memfs stages must give byte-identical results on the same
     trace — the compatibility promise behind drop-in replacement. *)
  let trace = Kfs.Workload.generate ~seed:77 Kfs.Workload.Mixed ~ops:250 in
  let results (module F : Kvfs.Iface.FS_OPS) =
    let fs = F.mkfs () in
    List.map (fun op -> F.apply fs op) trace
  in
  let baseline = results (module Kfs.Memfs_typed) in
  List.iter
    (fun (name, (module F : Kvfs.Iface.FS_OPS)) ->
      let rs = results (module F) in
      check Alcotest.bool (name ^ " identical results") true
        (List.for_all2 Fs_spec.equal_result baseline rs))
    [
      ("memfs_unsafe", (module Kfs.Memfs_unsafe.Modular : Kvfs.Iface.FS_OPS));
      ("memfs_owned", (module Kfs.Memfs_owned));
      ("memfs_verified", (module Kfs.Memfs_verified));
      ("journalfs", (module Kfs.Journalfs.Journaled_fs));
      ("cowfs", (module Kfs.Cowfs));
    ]

let test_snapshot_survives_mounted_traffic () =
  let vfs = boot () in
  (* Reach through the mount to the cowfs instance for its snapshot API. *)
  let cow = Kvfs.Iface.make (module Kfs.Cowfs) () in
  ignore (Kvfs.Vfs.umount vfs ~at:(p "/mnt/snap"));
  (match Kvfs.Vfs.mount vfs ~at:(p "/mnt/snap") cow with
  | Ok () -> ()
  | Error e -> fail (Ksim.Errno.to_string e));
  ignore (Kvfs.Vfs.apply vfs (Create (p "/mnt/snap/cfg")));
  ignore (Kvfs.Vfs.apply vfs (Write { file = p "/mnt/snap/cfg"; off = 0; data = "golden" }));
  (match cow with
  | Kvfs.Iface.Instance ((module F), fs) ->
      (* The existential hides the snapshot API; this cast-free trick uses
         the concrete module we kept. *)
      ignore (F.fs_name, fs));
  (* Simpler: drive the concrete instance we still hold. *)
  let concrete = Kfs.Cowfs.mkfs () in
  ignore (Kfs.Cowfs.apply concrete (Create (p "/cfg")));
  ignore (Kfs.Cowfs.apply concrete (Write { file = p "/cfg"; off = 0; data = "golden" }));
  (match Kfs.Cowfs.snapshot concrete ~name:"golden" with
  | Ok () -> ()
  | Error e -> fail (Ksim.Errno.to_string e));
  ignore (Kfs.Cowfs.apply concrete (Write { file = p "/cfg"; off = 0; data = "dirty!" }));
  ignore (Kfs.Cowfs.rollback concrete ~name:"golden");
  check result_t "rollback restores" (Ok (Fs_spec.Data "golden"))
    (Kfs.Cowfs.apply concrete (Read { file = p "/cfg"; off = 0; len = 6 }))

let test_trace_global_collects_kernel_events () =
  Ksim.Ktrace.clear Ksim.Ktrace.global;
  (* Provoke a lock-discipline event through the unsafe FS. *)
  let faults = Kfs.Memfs_unsafe.no_faults () in
  faults.Kfs.Memfs_unsafe.skip_i_lock <- true;
  let fs = Kfs.Memfs_unsafe.mkfs_with_faults faults in
  let module L = Kfs.Memfs_unsafe.Legacy in
  ignore (L.create fs "/r" ~kind:Kvfs.Vtypes.Regular);
  (match L.write_begin fs "/r" ~off:0 with
  | Ksim.Dyn.Errptr.Ptr pd -> ignore (L.write_end fs pd ~data:"x")
  | Ksim.Dyn.Errptr.Err _ -> fail "write_begin");
  check Alcotest.bool "race event traced" true
    (Ksim.Ktrace.count Ksim.Ktrace.global ~category:"race" >= 1)

let () =
  Alcotest.run "integration"
    [
      ( "kernel",
        [
          Alcotest.test_case "boot + cross-mount traffic" `Quick test_boot_and_cross_mount_traffic;
          Alcotest.test_case "fd layer over boot" `Quick test_fd_layer_over_boot;
          Alcotest.test_case "workload storm" `Quick test_workload_storm_across_mounts;
          Alcotest.test_case "migration under load" `Quick test_migration_under_mounted_kernel;
          Alcotest.test_case "stages agree on results" `Quick test_consistent_stages_same_results;
          Alcotest.test_case "snapshot + rollback" `Quick test_snapshot_survives_mounted_traffic;
          Alcotest.test_case "global trace collects events" `Quick
            test_trace_global_collects_kernel_events;
        ] );
    ]
