(* Tests for the virtual-memory stack: frame refcounting, demand paging,
   file-backed mappings, protection, copy-on-write fork, and a model-based
   property for the software MMU. *)

let check = Alcotest.check
let fail = Alcotest.fail

let errno_r pp_ok = Alcotest.result pp_ok (Alcotest.testable Ksim.Errno.pp Ksim.Errno.equal)

let mk ?(nframes = 64) ?(page_size = 16) () =
  let phys = Kmm.Phys.create ~nframes ~page_size in
  (phys, Kmm.Addr_space.create phys)

let mmap_ok space ~len ~prot backing =
  match Kmm.Addr_space.mmap space ~len ~prot backing with
  | Ok addr -> addr
  | Error e -> fail ("mmap: " ^ Ksim.Errno.to_string e)

(* Phys ------------------------------------------------------------------- *)

let test_phys_alloc_free () =
  let phys = Kmm.Phys.create ~nframes:4 ~page_size:8 in
  check Alcotest.int "all free" 4 (Kmm.Phys.free_frames phys);
  let f = match Kmm.Phys.alloc phys with Some f -> f | None -> fail "alloc" in
  check Alcotest.int "one used" 3 (Kmm.Phys.free_frames phys);
  check Alcotest.int "refcount 1" 1 (Kmm.Phys.refcount phys f);
  check Alcotest.string "zeroed" (String.make 8 '\000') (Kmm.Phys.read phys f ~off:0 ~len:8);
  Kmm.Phys.write phys f ~off:2 "hi";
  check Alcotest.string "written" "hi" (Kmm.Phys.read phys f ~off:2 ~len:2);
  Kmm.Phys.decref phys f;
  check Alcotest.int "freed" 4 (Kmm.Phys.free_frames phys)

let test_phys_refcount_sharing () =
  let phys = Kmm.Phys.create ~nframes:2 ~page_size:8 in
  let f = match Kmm.Phys.alloc phys with Some f -> f | None -> fail "alloc" in
  Kmm.Phys.incref phys f;
  Kmm.Phys.decref phys f;
  check Alcotest.int "still live" 1 (Kmm.Phys.refcount phys f);
  Kmm.Phys.decref phys f;
  (* A recycled frame comes back zeroed. *)
  let f2 = match Kmm.Phys.alloc phys with Some f -> f | None -> fail "realloc" in
  check Alcotest.string "zeroed on reuse" (String.make 8 '\000')
    (Kmm.Phys.read phys f2 ~off:0 ~len:8)

let test_phys_exhaustion () =
  let phys = Kmm.Phys.create ~nframes:2 ~page_size:8 in
  ignore (Kmm.Phys.alloc phys);
  ignore (Kmm.Phys.alloc phys);
  check Alcotest.bool "exhausted" true (Kmm.Phys.alloc phys = None)

(* Anonymous mappings -------------------------------------------------------- *)

let test_anon_zero_fill () =
  let _, space = mk () in
  let addr = mmap_ok space ~len:40 ~prot:Kmm.Addr_space.prot_rw Kmm.Addr_space.Anon in
  check (errno_r Alcotest.string) "zeros" (Ok (String.make 40 '\000'))
    (Kmm.Addr_space.read space ~addr ~len:40);
  (* 40 bytes at 16-byte pages = 3 pages resident after the read. *)
  check Alcotest.int "3 pages faulted" 3 (Kmm.Addr_space.resident_pages space);
  check Alcotest.int "minor faults" 3 (Kmm.Addr_space.stats space).Kmm.Addr_space.minor_faults

let test_anon_write_read_roundtrip () =
  let _, space = mk () in
  let addr = mmap_ok space ~len:64 ~prot:Kmm.Addr_space.prot_rw Kmm.Addr_space.Anon in
  (match Kmm.Addr_space.write space ~addr:(addr + 10) "hello across pages!" with
  | Ok () -> ()
  | Error e -> fail (Ksim.Errno.to_string e));
  check (errno_r Alcotest.string) "read back" (Ok "hello across pages!")
    (Kmm.Addr_space.read space ~addr:(addr + 10) ~len:19)

let test_lazy_allocation () =
  let phys, space = mk ~nframes:8 () in
  let _addr = mmap_ok space ~len:128 ~prot:Kmm.Addr_space.prot_rw Kmm.Addr_space.Anon in
  (* A huge mapping costs nothing until touched. *)
  check Alcotest.int "no frames used yet" 8 (Kmm.Phys.free_frames phys);
  check Alcotest.int "not resident" 0 (Kmm.Addr_space.resident_pages space)

let test_efault_unmapped () =
  let _, space = mk () in
  check (errno_r Alcotest.string) "unmapped read" (Error Ksim.Errno.EFAULT)
    (Kmm.Addr_space.read space ~addr:0x9999000 ~len:4);
  check (errno_r Alcotest.unit) "unmapped write" (Error Ksim.Errno.EFAULT)
    (Kmm.Addr_space.write space ~addr:0x9999000 "x")

let test_efault_crossing_past_end () =
  let _, space = mk () in
  let addr = mmap_ok space ~len:16 ~prot:Kmm.Addr_space.prot_rw Kmm.Addr_space.Anon in
  check (errno_r Alcotest.string) "runs off the vma" (Error Ksim.Errno.EFAULT)
    (Kmm.Addr_space.read space ~addr ~len:32)

let test_protection () =
  let _, space = mk () in
  let addr = mmap_ok space ~len:16 ~prot:Kmm.Addr_space.prot_ro Kmm.Addr_space.Anon in
  check (errno_r Alcotest.string) "read ok" (Ok (String.make 4 '\000'))
    (Kmm.Addr_space.read space ~addr ~len:4);
  check (errno_r Alcotest.unit) "write blocked" (Error Ksim.Errno.EFAULT)
    (Kmm.Addr_space.write space ~addr "x");
  (match Kmm.Addr_space.mprotect space ~addr Kmm.Addr_space.prot_rw with
  | Ok () -> ()
  | Error e -> fail (Ksim.Errno.to_string e));
  check (errno_r Alcotest.unit) "write after mprotect" (Ok ())
    (Kmm.Addr_space.write space ~addr "x")

let test_mmap_fixed_and_overlap () =
  let _, space = mk () in
  let psz = Kmm.Addr_space.page_size space in
  (match Kmm.Addr_space.mmap space ~addr:(100 * psz) ~len:psz ~prot:Kmm.Addr_space.prot_rw
           Kmm.Addr_space.Anon with
  | Ok addr -> check Alcotest.int "fixed address honored" (100 * psz) addr
  | Error e -> fail (Ksim.Errno.to_string e));
  check (errno_r Alcotest.int) "overlap rejected" (Error Ksim.Errno.EEXIST)
    (Kmm.Addr_space.mmap space ~addr:(100 * psz) ~len:psz ~prot:Kmm.Addr_space.prot_rw
       Kmm.Addr_space.Anon);
  check (errno_r Alcotest.int) "unaligned rejected" (Error Ksim.Errno.EINVAL)
    (Kmm.Addr_space.mmap space ~addr:3 ~len:psz ~prot:Kmm.Addr_space.prot_rw
       Kmm.Addr_space.Anon);
  check (errno_r Alcotest.int) "zero length rejected" (Error Ksim.Errno.EINVAL)
    (Kmm.Addr_space.mmap space ~len:0 ~prot:Kmm.Addr_space.prot_rw Kmm.Addr_space.Anon)

let test_munmap_releases_frames () =
  let phys, space = mk ~nframes:8 () in
  let addr = mmap_ok space ~len:48 ~prot:Kmm.Addr_space.prot_rw Kmm.Addr_space.Anon in
  ignore (Kmm.Addr_space.write space ~addr (String.make 48 'x'));
  check Alcotest.int "frames in use" 5 (Kmm.Phys.free_frames phys);
  (match Kmm.Addr_space.munmap space ~addr with
  | Ok () -> ()
  | Error e -> fail (Ksim.Errno.to_string e));
  check Alcotest.int "frames returned" 8 (Kmm.Phys.free_frames phys);
  check (errno_r Alcotest.string) "address gone" (Error Ksim.Errno.EFAULT)
    (Kmm.Addr_space.read space ~addr ~len:1);
  check (errno_r Alcotest.unit) "double munmap" (Error Ksim.Errno.EINVAL)
    (Kmm.Addr_space.munmap space ~addr)

let test_enomem () =
  let _, space = mk ~nframes:2 () in
  let addr = mmap_ok space ~len:64 ~prot:Kmm.Addr_space.prot_rw Kmm.Addr_space.Anon in
  check (errno_r Alcotest.unit) "third page fails" (Error Ksim.Errno.ENOMEM)
    (Kmm.Addr_space.write space ~addr (String.make 64 'x'))

(* File-backed mappings --------------------------------------------------------- *)

let file_instance contents =
  let inst = Kvfs.Iface.make (module Kfs.Memfs_typed) () in
  let p = Kspec.Fs_spec.path_of_string "/data" in
  ignore (Kvfs.Iface.instance_apply inst (Kspec.Fs_spec.Create p));
  ignore (Kvfs.Iface.instance_apply inst (Kspec.Fs_spec.Write { file = p; off = 0; data = contents }));
  (inst, p)

let test_file_mapping_reads_file () =
  let _, space = mk () in
  let inst, path = file_instance "The quick brown fox jumps over the lazy dog." in
  let addr =
    mmap_ok space ~len:44 ~prot:Kmm.Addr_space.prot_ro
      (Kmm.Addr_space.File { inst; path; offset = 0 })
  in
  check (errno_r Alcotest.string) "mapped contents" (Ok "quick brown")
    (Kmm.Addr_space.read space ~addr:(addr + 4) ~len:11);
  check Alcotest.bool "file faults counted" true
    ((Kmm.Addr_space.stats space).Kmm.Addr_space.file_faults > 0)

let test_file_mapping_offset () =
  let _, space = mk () in
  let inst, path = file_instance "0123456789ABCDEFGHIJKLMNOPQRSTUV" in
  let addr =
    mmap_ok space ~len:16 ~prot:Kmm.Addr_space.prot_ro
      (Kmm.Addr_space.File { inst; path; offset = 16 })
  in
  check (errno_r Alcotest.string) "second page of the file" (Ok "GHIJ")
    (Kmm.Addr_space.read space ~addr ~len:4)

let test_file_mapping_is_private () =
  let _, space = mk () in
  let inst, path = file_instance "original content" in
  let addr =
    mmap_ok space ~len:16 ~prot:Kmm.Addr_space.prot_rw
      (Kmm.Addr_space.File { inst; path; offset = 0 })
  in
  ignore (Kmm.Addr_space.write space ~addr "MUTATED!");
  check (errno_r Alcotest.string) "mapping sees the store" (Ok "MUTATED! content")
    (Kmm.Addr_space.read space ~addr ~len:16);
  (* The file itself is untouched: MAP_PRIVATE. *)
  match Kvfs.Iface.instance_apply inst (Kspec.Fs_spec.Read { file = path; off = 0; len = 16 }) with
  | Ok (Kspec.Fs_spec.Data data) -> check Alcotest.string "file untouched" "original content" data
  | _ -> fail "file read failed"

let test_file_mapping_past_eof_zeros () =
  let _, space = mk () in
  let inst, path = file_instance "short" in
  let addr =
    mmap_ok space ~len:32 ~prot:Kmm.Addr_space.prot_ro
      (Kmm.Addr_space.File { inst; path; offset = 0 })
  in
  check (errno_r Alcotest.string) "tail is zeros" (Ok ("short" ^ String.make 11 '\000'))
    (Kmm.Addr_space.read space ~addr ~len:16)

(* fork + COW --------------------------------------------------------------------- *)

let test_fork_shares_then_isolates () =
  let phys, space = mk ~nframes:16 () in
  let addr = mmap_ok space ~len:32 ~prot:Kmm.Addr_space.prot_rw Kmm.Addr_space.Anon in
  ignore (Kmm.Addr_space.write space ~addr "parent data here earlier writes!");
  let before_fork = Kmm.Phys.free_frames phys in
  let child = Kmm.Addr_space.fork space in
  (* fork itself allocates nothing. *)
  check Alcotest.int "no frames at fork" before_fork (Kmm.Phys.free_frames phys);
  check (errno_r Alcotest.string) "child reads parent data" (Ok "parent")
    (Kmm.Addr_space.read child ~addr ~len:6);
  (* Child writes: COW breaks for that page only. *)
  (match Kmm.Addr_space.write child ~addr "CHILD!" with
  | Ok () -> ()
  | Error e -> fail (Ksim.Errno.to_string e));
  check Alcotest.int "one cow break" 1 (Kmm.Addr_space.stats child).Kmm.Addr_space.cow_breaks;
  check (errno_r Alcotest.string) "child sees its write" (Ok "CHILD!")
    (Kmm.Addr_space.read child ~addr ~len:6);
  check (errno_r Alcotest.string) "parent unchanged" (Ok "parent")
    (Kmm.Addr_space.read space ~addr ~len:6);
  (* And the second page is still shared. *)
  check (errno_r Alcotest.string) "shared tail" (Ok "writes!")
    (Kmm.Addr_space.read child ~addr:(addr + 25) ~len:7)

let test_parent_write_also_cows () =
  let _, space = mk () in
  let addr = mmap_ok space ~len:16 ~prot:Kmm.Addr_space.prot_rw Kmm.Addr_space.Anon in
  ignore (Kmm.Addr_space.write space ~addr "shared");
  let child = Kmm.Addr_space.fork space in
  ignore (Kmm.Addr_space.write space ~addr "PARENT");
  check (errno_r Alcotest.string) "child keeps old value" (Ok "shared")
    (Kmm.Addr_space.read child ~addr ~len:6);
  check (errno_r Alcotest.string) "parent new value" (Ok "PARENT")
    (Kmm.Addr_space.read space ~addr ~len:6)

let test_destroy_releases_everything () =
  let phys, space = mk ~nframes:8 () in
  let addr = mmap_ok space ~len:64 ~prot:Kmm.Addr_space.prot_rw Kmm.Addr_space.Anon in
  ignore (Kmm.Addr_space.write space ~addr (String.make 64 'z'));
  let child = Kmm.Addr_space.fork space in
  ignore (Kmm.Addr_space.write child ~addr "c");
  Kmm.Addr_space.destroy child;
  Kmm.Addr_space.destroy space;
  check Alcotest.int "all frames back" 8 (Kmm.Phys.free_frames phys)

let test_fork_chain () =
  let _, space = mk ~nframes:32 () in
  let addr = mmap_ok space ~len:16 ~prot:Kmm.Addr_space.prot_rw Kmm.Addr_space.Anon in
  ignore (Kmm.Addr_space.write space ~addr "gen0");
  let c1 = Kmm.Addr_space.fork space in
  let c2 = Kmm.Addr_space.fork c1 in
  ignore (Kmm.Addr_space.write c2 ~addr "gen2");
  check (errno_r Alcotest.string) "gen0 intact" (Ok "gen0") (Kmm.Addr_space.read space ~addr ~len:4);
  check (errno_r Alcotest.string) "gen1 intact" (Ok "gen0") (Kmm.Addr_space.read c1 ~addr ~len:4);
  check (errno_r Alcotest.string) "gen2 updated" (Ok "gen2") (Kmm.Addr_space.read c2 ~addr ~len:4)

(* Model-based property: the software MMU against a byte-array model. ------------- *)

let prop_mmu_matches_model =
  QCheck2.Test.make ~name:"software MMU matches a flat byte model" ~count:200
    QCheck2.Gen.(
      list_size (int_range 1 30)
        (triple bool (int_range 0 120) (string_size ~gen:(char_range 'a' 'z') (int_range 1 10))))
    (fun script ->
      let phys = Kmm.Phys.create ~nframes:64 ~page_size:16 in
      let space = Kmm.Addr_space.create phys in
      let base =
        match Kmm.Addr_space.mmap space ~len:128 ~prot:Kmm.Addr_space.prot_rw Kmm.Addr_space.Anon with
        | Ok a -> a
        | Error _ -> assert false
      in
      let model = Bytes.make 128 '\000' in
      List.for_all
        (fun (is_write, off, data) ->
          if is_write then begin
            let len = min (String.length data) (128 - off) in
            if len <= 0 then true
            else begin
              let data = String.sub data 0 len in
              match Kmm.Addr_space.write space ~addr:(base + off) data with
              | Ok () ->
                  Bytes.blit_string data 0 model off len;
                  true
              | Error _ -> false
            end
          end
          else begin
            let len = min 12 (128 - off) in
            match Kmm.Addr_space.read space ~addr:(base + off) ~len with
            | Ok got -> String.equal got (Bytes.sub_string model off len)
            | Error _ -> false
          end)
        script)

let prop_fork_isolation =
  QCheck2.Test.make ~name:"fork isolates parent and child" ~count:100
    QCheck2.Gen.(
      pair
        (string_size ~gen:(char_range 'a' 'z') (int_range 1 32))
        (string_size ~gen:(char_range 'A' 'Z') (int_range 1 32)))
    (fun (parent_data, child_data) ->
      let phys = Kmm.Phys.create ~nframes:64 ~page_size:16 in
      let space = Kmm.Addr_space.create phys in
      let addr =
        match Kmm.Addr_space.mmap space ~len:32 ~prot:Kmm.Addr_space.prot_rw Kmm.Addr_space.Anon with
        | Ok a -> a
        | Error _ -> assert false
      in
      (match Kmm.Addr_space.write space ~addr parent_data with Ok () -> () | Error _ -> assert false);
      let child = Kmm.Addr_space.fork space in
      (match Kmm.Addr_space.write child ~addr child_data with Ok () -> () | Error _ -> assert false);
      let parent_view = Kmm.Addr_space.read space ~addr ~len:(String.length parent_data) in
      let child_view = Kmm.Addr_space.read child ~addr ~len:(String.length child_data) in
      parent_view = Ok parent_data && child_view = Ok child_data)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "kmm"
    [
      ( "phys",
        [
          Alcotest.test_case "alloc/free" `Quick test_phys_alloc_free;
          Alcotest.test_case "refcount sharing" `Quick test_phys_refcount_sharing;
          Alcotest.test_case "exhaustion" `Quick test_phys_exhaustion;
        ] );
      ( "anon",
        [
          Alcotest.test_case "zero fill" `Quick test_anon_zero_fill;
          Alcotest.test_case "write/read roundtrip" `Quick test_anon_write_read_roundtrip;
          Alcotest.test_case "lazy allocation" `Quick test_lazy_allocation;
          Alcotest.test_case "EFAULT unmapped" `Quick test_efault_unmapped;
          Alcotest.test_case "EFAULT past end" `Quick test_efault_crossing_past_end;
          Alcotest.test_case "protection" `Quick test_protection;
          Alcotest.test_case "fixed mmap + overlap" `Quick test_mmap_fixed_and_overlap;
          Alcotest.test_case "munmap releases frames" `Quick test_munmap_releases_frames;
          Alcotest.test_case "ENOMEM" `Quick test_enomem;
        ] );
      ( "file",
        [
          Alcotest.test_case "reads file" `Quick test_file_mapping_reads_file;
          Alcotest.test_case "offset" `Quick test_file_mapping_offset;
          Alcotest.test_case "private" `Quick test_file_mapping_is_private;
          Alcotest.test_case "past EOF zeros" `Quick test_file_mapping_past_eof_zeros;
        ] );
      ( "fork",
        [
          Alcotest.test_case "shares then isolates" `Quick test_fork_shares_then_isolates;
          Alcotest.test_case "parent write cows" `Quick test_parent_write_also_cows;
          Alcotest.test_case "destroy releases" `Quick test_destroy_releases_everything;
          Alcotest.test_case "fork chain" `Quick test_fork_chain;
        ] );
      ("properties", qcheck [ prop_mmu_matches_model; prop_fork_isolation ]);
    ]
