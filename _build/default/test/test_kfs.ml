(* Tests for the file systems: per-stage functional behaviour, the
   differential property that every stage agrees with the abstract spec on
   random traces, union and CoW semantics, and the workload generator. *)

open Kspec

let check = Alcotest.check
let fail = Alcotest.fail
let p = Fs_spec.path_of_string

let result_t : Fs_spec.result Alcotest.testable =
  Alcotest.testable Fs_spec.pp_result Fs_spec.equal_result

(* Generator for differential traces: short component names so paths
   collide often, mixing valid and invalid operations. *)
let gen_name = QCheck2.Gen.oneofl [ "a"; "b"; "c" ]
let gen_path = QCheck2.Gen.(list_size (int_range 1 3) gen_name)

let gen_op =
  let open QCheck2.Gen in
  oneof
    [
      map (fun pa -> Fs_spec.Create pa) gen_path;
      map (fun pa -> Fs_spec.Mkdir pa) gen_path;
      map3
        (fun pa off data -> Fs_spec.Write { file = pa; off; data })
        gen_path (int_range 0 12)
        (string_size ~gen:(char_range 'a' 'z') (int_range 0 10));
      map3 (fun pa off len -> Fs_spec.Read { file = pa; off; len }) gen_path (int_range 0 12)
        (int_range 0 16);
      map2 (fun pa n -> Fs_spec.Truncate (pa, n)) gen_path (int_range 0 16);
      map (fun pa -> Fs_spec.Unlink pa) gen_path;
      map (fun pa -> Fs_spec.Rmdir pa) gen_path;
      map2 (fun a b -> Fs_spec.Rename (a, b)) gen_path gen_path;
      map (fun pa -> Fs_spec.Readdir pa) gen_path;
      map (fun pa -> Fs_spec.Stat pa) gen_path;
      return Fs_spec.Fsync;
    ]

let gen_trace = QCheck2.Gen.(list_size (int_range 0 50) gen_op)

(* Differential check of an implementation against the spec: results AND
   interpreted states after every op. *)
let agrees_with_spec (type f) (module F : Kvfs.Iface.FS_OPS with type fs = f) ops =
  let fs = F.mkfs () in
  let rec go spec_state = function
    | [] -> true
    | op :: rest ->
        let got = F.apply fs op in
        let spec_state', expected = Fs_spec.step spec_state op in
        Fs_spec.equal_result expected got
        && Fs_spec.equal spec_state' (F.interpret fs)
        && go spec_state' rest
  in
  go Fs_spec.empty ops

let differential name (module F : Kvfs.Iface.FS_OPS) =
  QCheck2.Test.make ~name:(name ^ " agrees with Fs_spec on random traces") ~count:150 gen_trace
    (fun ops -> agrees_with_spec (module F) ops)

(* memfs_owned: on top of spec agreement, no trace may leave ownership
   violations behind. *)
let owned_no_violations =
  QCheck2.Test.make ~name:"memfs_owned never violates ownership" ~count:150 gen_trace
    (fun ops ->
      let fs = Kfs.Memfs_owned.mkfs () in
      List.iter (fun op -> ignore (Kfs.Memfs_owned.apply fs op)) ops;
      Ownership.Checker.violation_count (Kfs.Memfs_owned.checker fs) = 0)

(* Group-commit journalfs must agree with the spec exactly like the
   per-op-commit variant. *)
let journalfs_group_differential =
  QCheck2.Test.make ~name:"journalfs(group-commit) agrees with Fs_spec" ~count:40 gen_trace
    (fun ops -> agrees_with_spec (module Kfs.Journalfs.Journaled_group_fs) ops)

(* Unionfs over a populated lower layer, against the merged spec state.
   Rename is excluded (directory rename is EXDEV by design); everything
   else must behave exactly like one merged file system. *)
let gen_union_op =
  let open QCheck2.Gen in
  oneof
    [
      map (fun pa -> Fs_spec.Create pa) gen_path;
      map (fun pa -> Fs_spec.Mkdir pa) gen_path;
      map2
        (fun pa data -> Fs_spec.Write { file = pa; off = 0; data })
        gen_path
        (string_size ~gen:(char_range 'a' 'z') (int_range 0 8));
      map (fun pa -> Fs_spec.Read { file = pa; off = 0; len = 12 }) gen_path;
      map (fun pa -> Fs_spec.Unlink pa) gen_path;
      map (fun pa -> Fs_spec.Rmdir pa) gen_path;
      map (fun pa -> Fs_spec.Readdir pa) gen_path;
      map (fun pa -> Fs_spec.Stat pa) gen_path;
    ]

let union_differential =
  QCheck2.Test.make ~name:"unionfs behaves as the merged file system (no rename)" ~count:120
    QCheck2.Gen.(pair (list_size (int_range 0 12) gen_union_op)
                   (list_size (int_range 0 25) gen_union_op))
    (fun (lower_ops, ops) ->
      let lower = Kvfs.Iface.make (module Kfs.Memfs_typed) () in
      let spec0 =
        List.fold_left
          (fun st op ->
            ignore (Kvfs.Iface.instance_apply lower op);
            fst (Fs_spec.step st op))
          Fs_spec.empty lower_ops
      in
      let fs = Kfs.Unionfs.make ~upper:(Kvfs.Iface.make (module Kfs.Memfs_typed) ()) ~lower in
      let rec go spec = function
        | [] -> true
        | op :: rest ->
            let got = Kfs.Unionfs.apply fs op in
            let spec', expected = Fs_spec.step spec op in
            Fs_spec.equal_result expected got
            && Fs_spec.equal spec' (Kfs.Unionfs.interpret fs)
            && go spec' rest
      in
      go spec0 ops)

(* Fixed smoke run for each stage. *)
let smoke_stage name (module F : Kvfs.Iface.FS_OPS) () =
  let inst = Kvfs.Iface.make (module F) () in
  let ok, errs = Kfs.Workload.replay inst Kfs.Workload.smoke in
  check Alcotest.int (name ^ " smoke all ok") (List.length Kfs.Workload.smoke) ok;
  check Alcotest.int (name ^ " no errors") 0 errs

(* memfs_unsafe specifics --------------------------------------------------------- *)

let test_unsafe_no_faults_is_correct () =
  check Alcotest.bool "clean run agrees with spec" true
    (agrees_with_spec
       (module Kfs.Memfs_unsafe.Modular)
       [ Fs_spec.Create (p "/f");
         Fs_spec.Write { file = p "/f"; off = 0; data = "abc" };
         Fs_spec.Read { file = p "/f"; off = 0; len = 3 };
         Fs_spec.Unlink (p "/f") ])

let test_unsafe_uaf_fault_oopses () =
  let faults = Kfs.Memfs_unsafe.no_faults () in
  faults.Kfs.Memfs_unsafe.use_after_free <- true;
  let fs = Kfs.Memfs_unsafe.mkfs_with_faults faults in
  let module L = Kfs.Memfs_unsafe.Legacy in
  ignore (L.create fs "/f" ~kind:Kvfs.Vtypes.Regular);
  ignore (L.unlink fs "/f");
  match L.read fs "/f" ~off:0 ~len:4 with
  | _ -> fail "expected Use_after_free"
  | exception Ksim.Kmem.Use_after_free _ -> ()

let test_unsafe_leak_fault_leaks () =
  let faults = Kfs.Memfs_unsafe.no_faults () in
  faults.Kfs.Memfs_unsafe.memory_leak <- true;
  let fs = Kfs.Memfs_unsafe.mkfs_with_faults faults in
  let module L = Kfs.Memfs_unsafe.Legacy in
  ignore (L.create fs "/f" ~kind:Kvfs.Vtypes.Regular);
  ignore (L.unlink fs "/f");
  check Alcotest.int "one leaked object" 1
    (List.length (Ksim.Kmem.leaks (Kfs.Memfs_unsafe.heap fs)))

let test_unsafe_wrong_cast_confuses () =
  let faults = Kfs.Memfs_unsafe.no_faults () in
  faults.Kfs.Memfs_unsafe.wrong_cast <- true;
  let fs = Kfs.Memfs_unsafe.mkfs_with_faults faults in
  let module L = Kfs.Memfs_unsafe.Legacy in
  ignore (L.create fs "/f" ~kind:Kvfs.Vtypes.Regular);
  match L.write_begin fs "/f" ~off:0 with
  | Ksim.Dyn.Errptr.Err _ -> fail "write_begin failed"
  | Ksim.Dyn.Errptr.Ptr private_data -> (
      match L.write_end fs private_data ~data:"x" with
      | _ -> fail "expected Type_confusion"
      | exception Ksim.Dyn.Type_confusion _ -> ())

let test_unsafe_missing_errptr_check_oopses () =
  let faults = Kfs.Memfs_unsafe.no_faults () in
  faults.Kfs.Memfs_unsafe.missing_errptr_check <- true;
  let fs = Kfs.Memfs_unsafe.mkfs_with_faults faults in
  let module L = Kfs.Memfs_unsafe.Legacy in
  match L.read fs "/missing" ~off:0 ~len:4 with
  | _ -> fail "expected Null_dereference"
  | exception Ksim.Dyn.Null_dereference -> ()

(* memfs_owned specifics ------------------------------------------------------------ *)

let test_owned_clean_run_no_violations () =
  let fs = Kfs.Memfs_owned.mkfs () in
  List.iter
    (fun op -> ignore (Kfs.Memfs_owned.apply fs op))
    [ Fs_spec.Create (p "/f");
      Fs_spec.Write { file = p "/f"; off = 0; data = String.make 200 'x' };
      Fs_spec.Read { file = p "/f"; off = 0; len = 200 };
      Fs_spec.Truncate (p "/f", 10);
      Fs_spec.Unlink (p "/f") ];
  check Alcotest.int "no violations" 0
    (Ownership.Checker.violation_count (Kfs.Memfs_owned.checker fs));
  check Alcotest.bool "no leaks after destroy" true (Kfs.Memfs_owned.destroy fs)

let test_owned_unlink_frees_region () =
  let fs = Kfs.Memfs_owned.mkfs () in
  ignore (Kfs.Memfs_owned.apply fs (Fs_spec.Create (p "/f")));
  let ck = Kfs.Memfs_owned.checker fs in
  check Alcotest.int "one region live" 1 (List.length (Ownership.Checker.live_regions ck));
  ignore (Kfs.Memfs_owned.apply fs (Fs_spec.Unlink (p "/f")));
  check Alcotest.int "freed on unlink" 0 (List.length (Ownership.Checker.live_regions ck))

let test_owned_rename_over_frees_target () =
  let fs = Kfs.Memfs_owned.mkfs () in
  ignore (Kfs.Memfs_owned.apply fs (Fs_spec.Create (p "/a")));
  ignore (Kfs.Memfs_owned.apply fs (Fs_spec.Create (p "/b")));
  ignore (Kfs.Memfs_owned.apply fs (Fs_spec.Rename (p "/a", p "/b")));
  check Alcotest.int "overwritten region freed" 1
    (List.length (Ownership.Checker.live_regions (Kfs.Memfs_owned.checker fs)))

(* memfs_verified specifics ------------------------------------------------------------ *)

let test_verified_counts_checked_ops () =
  let fs = Kfs.Memfs_verified.mkfs () in
  ignore (Kfs.Memfs_verified.apply fs (Fs_spec.Create (p "/f")));
  ignore (Kfs.Memfs_verified.apply fs (Fs_spec.Stat (p "/f")));
  check Alcotest.int "monitored" 2 (Kfs.Memfs_verified.checked_ops fs)

(* journalfs specifics ------------------------------------------------------------------- *)

let test_journalfs_basic () =
  let fs = Kfs.Journalfs.Journaled_fs.mkfs () in
  check result_t "mkdir" (Ok Fs_spec.Unit) (Kfs.Journalfs.apply fs (Fs_spec.Mkdir (p "/d")));
  check result_t "create" (Ok Fs_spec.Unit) (Kfs.Journalfs.apply fs (Fs_spec.Create (p "/d/f")));
  check result_t "write" (Ok Fs_spec.Unit)
    (Kfs.Journalfs.apply fs (Fs_spec.Write { file = p "/d/f"; off = 0; data = "hello" }));
  check result_t "read" (Ok (Fs_spec.Data "hello"))
    (Kfs.Journalfs.apply fs (Fs_spec.Read { file = p "/d/f"; off = 0; len = 10 }));
  check result_t "fsync" (Ok Fs_spec.Unit) (Kfs.Journalfs.apply fs Fs_spec.Fsync)

let test_journalfs_remount_preserves_state () =
  let fs = Kfs.Journalfs.Journaled_fs.mkfs () in
  ignore (Kfs.Journalfs.apply fs (Fs_spec.Create (p "/f")));
  ignore (Kfs.Journalfs.apply fs (Fs_spec.Write { file = p "/f"; off = 0; data = "persisted" }));
  ignore (Kfs.Journalfs.apply fs Fs_spec.Fsync);
  let dev = Kfs.Journalfs.device fs in
  let fs2 = Kfs.Journalfs.mount Kfs.Journalfs.Journaled dev in
  check Alcotest.bool "not corrupt" false (Kfs.Journalfs.is_corrupt fs2);
  check result_t "data survived remount" (Ok (Fs_spec.Data "persisted"))
    (Kfs.Journalfs.apply fs2 (Fs_spec.Read { file = p "/f"; off = 0; len = 16 }))

let test_journalfs_crash_without_fsync_recovers_committed () =
  let fs = Kfs.Journalfs.Journaled_fs.mkfs () in
  ignore (Kfs.Journalfs.apply fs (Fs_spec.Create (p "/f")));
  (* No fsync; the journal committed the op anyway. *)
  Kblock.Blockdev.crash (Kfs.Journalfs.device fs);
  let fs2 = Kfs.Journalfs.mount Kfs.Journalfs.Journaled (Kfs.Journalfs.device fs) in
  check result_t "create survived via journal replay"
    (Ok (Fs_spec.Attr { kind = `File; size = 0 }))
    (Kfs.Journalfs.apply fs2 (Fs_spec.Stat (p "/f")))

let test_journalfs_enospc () =
  let geometry =
    { Kfs.Journalfs.nblocks = 160; block_size = 512; jblocks = 96; ninodes = 8 }
  in
  let dev = Kblock.Blockdev.create ~nblocks:160 ~block_size:512 in
  let fs = Kfs.Journalfs.mkfs_on ~geometry Kfs.Journalfs.Journaled dev in
  ignore (Kfs.Journalfs.apply fs (Fs_spec.Create (p "/f")));
  (* The data area is ~55 blocks; a 100-block file cannot fit. *)
  check result_t "write too big" (Error Ksim.Errno.ENOSPC)
    (Kfs.Journalfs.apply fs
       (Fs_spec.Write { file = p "/f"; off = 0; data = String.make 51_200 'x' }));
  (* Inode exhaustion. *)
  let created = ref 0 in
  (try
     for i = 0 to 20 do
       match Kfs.Journalfs.apply fs (Fs_spec.Create [ Printf.sprintf "f%d" i ]) with
       | Ok _ -> incr created
       | Error Ksim.Errno.ENOSPC -> raise Exit
       | Error e -> fail (Ksim.Errno.to_string e)
     done
   with Exit -> ());
  check Alcotest.bool "inode table exhausts" true (!created < 21)

let test_journalfs_large_file_multiblock () =
  let fs = Kfs.Journalfs.Journaled_fs.mkfs () in
  let data = String.init 2_000 (fun i -> Char.chr (Char.code 'a' + (i mod 26))) in
  ignore (Kfs.Journalfs.apply fs (Fs_spec.Create (p "/big")));
  check result_t "multi-block write" (Ok Fs_spec.Unit)
    (Kfs.Journalfs.apply fs (Fs_spec.Write { file = p "/big"; off = 0; data }));
  check result_t "read it all back" (Ok (Fs_spec.Data data))
    (Kfs.Journalfs.apply fs (Fs_spec.Read { file = p "/big"; off = 0; len = 2_000 }));
  (* And across a remount. *)
  ignore (Kfs.Journalfs.apply fs Fs_spec.Fsync);
  let fs2 = Kfs.Journalfs.mount Kfs.Journalfs.Journaled (Kfs.Journalfs.device fs) in
  check result_t "after remount" (Ok (Fs_spec.Data data))
    (Kfs.Journalfs.apply fs2 (Fs_spec.Read { file = p "/big"; off = 0; len = 2_000 }))

let test_journalfs_direct_mode_loses_unflushed () =
  let fs = Kfs.Journalfs.Direct_fs.mkfs () in
  ignore (Kfs.Journalfs.apply fs (Fs_spec.Create (p "/f")));
  Kblock.Blockdev.crash (Kfs.Journalfs.device fs);
  let fs2 = Kfs.Journalfs.mount Kfs.Journalfs.Direct (Kfs.Journalfs.device fs) in
  (* Without a journal, the unflushed create is simply gone (mkfs state). *)
  check result_t "create lost" (Error Ksim.Errno.ENOENT)
    (Kfs.Journalfs.apply fs2 (Fs_spec.Stat (p "/f")))

let journalfs_differential =
  QCheck2.Test.make ~name:"journalfs agrees with Fs_spec on random traces" ~count:60 gen_trace
    (fun ops -> agrees_with_spec (module Kfs.Journalfs.Journaled_fs) ops)

(* unionfs ----------------------------------------------------------------------------- *)

let union_with_lower ops =
  let lower = Kvfs.Iface.make (module Kfs.Memfs_typed) () in
  List.iter (fun op -> ignore (Kvfs.Iface.instance_apply lower op)) ops;
  Kfs.Unionfs.make ~upper:(Kvfs.Iface.make (module Kfs.Memfs_typed) ()) ~lower

let test_union_reads_lower () =
  let fs =
    union_with_lower
      [ Fs_spec.Create (p "/base"); Fs_spec.Write { file = p "/base"; off = 0; data = "low" } ]
  in
  check result_t "lower file visible" (Ok (Fs_spec.Data "low"))
    (Kfs.Unionfs.apply fs (Fs_spec.Read { file = p "/base"; off = 0; len = 8 }))

let test_union_copy_up_on_write () =
  let fs =
    union_with_lower
      [ Fs_spec.Create (p "/base"); Fs_spec.Write { file = p "/base"; off = 0; data = "low" } ]
  in
  check result_t "write triggers copy-up" (Ok Fs_spec.Unit)
    (Kfs.Unionfs.apply fs (Fs_spec.Write { file = p "/base"; off = 0; data = "UP" }));
  check result_t "union sees new" (Ok (Fs_spec.Data "UPw"))
    (Kfs.Unionfs.apply fs (Fs_spec.Read { file = p "/base"; off = 0; len = 8 }))
    [@warning "-5"];
  (* The lower layer is untouched. *)
  check result_t "lower unchanged" (Ok (Fs_spec.Data "low"))
    (Kvfs.Iface.instance_apply (Kfs.Unionfs.lower fs)
       (Fs_spec.Read { file = p "/base"; off = 0; len = 8 }))

let test_union_whiteout_hides_lower () =
  let fs = union_with_lower [ Fs_spec.Create (p "/doomed") ] in
  check result_t "unlink lower file" (Ok Fs_spec.Unit)
    (Kfs.Unionfs.apply fs (Fs_spec.Unlink (p "/doomed")));
  check result_t "gone from union" (Error Ksim.Errno.ENOENT)
    (Kfs.Unionfs.apply fs (Fs_spec.Stat (p "/doomed")));
  (* Still in the lower layer, hidden by a whiteout in the upper. *)
  check result_t "lower retains it" (Ok (Fs_spec.Attr { kind = `File; size = 0 }))
    (Kvfs.Iface.instance_apply (Kfs.Unionfs.lower fs) (Fs_spec.Stat (p "/doomed")));
  (* Re-creating removes the whiteout. *)
  check result_t "recreate" (Ok Fs_spec.Unit) (Kfs.Unionfs.apply fs (Fs_spec.Create (p "/doomed")));
  check result_t "back" (Ok (Fs_spec.Attr { kind = `File; size = 0 }))
    (Kfs.Unionfs.apply fs (Fs_spec.Stat (p "/doomed")))

let test_union_readdir_merges_and_hides () =
  let fs =
    union_with_lower
      [ Fs_spec.Create (p "/one"); Fs_spec.Create (p "/two"); Fs_spec.Create (p "/three") ]
  in
  ignore (Kfs.Unionfs.apply fs (Fs_spec.Create (p "/upper_only")));
  ignore (Kfs.Unionfs.apply fs (Fs_spec.Unlink (p "/two")));
  check result_t "merged minus whiteouts"
    (Ok (Fs_spec.Names [ "one"; "three"; "upper_only" ]))
    (Kfs.Unionfs.apply fs (Fs_spec.Readdir []))

let test_union_dir_rename_exdev () =
  let fs = union_with_lower [ Fs_spec.Mkdir (p "/d") ] in
  check result_t "dir rename refused" (Error Ksim.Errno.EXDEV)
    (Kfs.Unionfs.apply fs (Fs_spec.Rename (p "/d", p "/e")))

let test_union_file_rename_across_layers () =
  let fs =
    union_with_lower
      [ Fs_spec.Create (p "/src"); Fs_spec.Write { file = p "/src"; off = 0; data = "move me" } ]
  in
  check result_t "rename lower file" (Ok Fs_spec.Unit)
    (Kfs.Unionfs.apply fs (Fs_spec.Rename (p "/src", p "/dst")));
  check result_t "dst has content" (Ok (Fs_spec.Data "move me"))
    (Kfs.Unionfs.apply fs (Fs_spec.Read { file = p "/dst"; off = 0; len = 16 }));
  check result_t "src gone" (Error Ksim.Errno.ENOENT)
    (Kfs.Unionfs.apply fs (Fs_spec.Stat (p "/src")))

let test_union_rmdir_with_lower_children_refused () =
  let fs = union_with_lower [ Fs_spec.Mkdir (p "/d"); Fs_spec.Create (p "/d/f") ] in
  check result_t "not empty (lower child)" (Error Ksim.Errno.ENOTEMPTY)
    (Kfs.Unionfs.apply fs (Fs_spec.Rmdir (p "/d")));
  ignore (Kfs.Unionfs.apply fs (Fs_spec.Unlink (p "/d/f")));
  check result_t "now removable" (Ok Fs_spec.Unit) (Kfs.Unionfs.apply fs (Fs_spec.Rmdir (p "/d")))

let test_union_interpret_merges () =
  let fs = union_with_lower [ Fs_spec.Create (p "/low"); Fs_spec.Mkdir (p "/d") ] in
  ignore (Kfs.Unionfs.apply fs (Fs_spec.Create (p "/d/up")));
  ignore (Kfs.Unionfs.apply fs (Fs_spec.Unlink (p "/low")));
  let st = Kfs.Unionfs.interpret fs in
  check Alcotest.bool "whiteout hidden from view" false (Fs_spec.Pathmap.mem (p "/low") st);
  check Alcotest.bool "upper file present" true (Fs_spec.Pathmap.mem (p "/d/up") st);
  check Alcotest.bool "no .wh. leaks into the view" true
    (Fs_spec.Pathmap.for_all
       (fun path _ ->
         match Fs_spec.basename path with
         | Some base -> not (Kfs.Unionfs.is_whiteout_name base)
         | None -> true)
       st)

(* cowfs -------------------------------------------------------------------------------- *)

let test_cow_snapshot_isolation () =
  let fs = Kfs.Cowfs.mkfs () in
  ignore (Kfs.Cowfs.apply fs (Fs_spec.Create (p "/f")));
  ignore (Kfs.Cowfs.apply fs (Fs_spec.Write { file = p "/f"; off = 0; data = "v1" }));
  (match Kfs.Cowfs.snapshot fs ~name:"s1" with Ok () -> () | Error e -> fail (Ksim.Errno.to_string e));
  ignore (Kfs.Cowfs.apply fs (Fs_spec.Write { file = p "/f"; off = 0; data = "v2" }));
  check result_t "live sees v2" (Ok (Fs_spec.Data "v2"))
    (Kfs.Cowfs.apply fs (Fs_spec.Read { file = p "/f"; off = 0; len = 4 }));
  (match Kfs.Cowfs.rollback fs ~name:"s1" with Ok () -> () | Error e -> fail (Ksim.Errno.to_string e));
  check result_t "rollback restores v1" (Ok (Fs_spec.Data "v1"))
    (Kfs.Cowfs.apply fs (Fs_spec.Read { file = p "/f"; off = 0; len = 4 }))

let test_cow_snapshot_name_reuse () =
  let fs = Kfs.Cowfs.mkfs () in
  ignore (Kfs.Cowfs.snapshot fs ~name:"s");
  check Alcotest.bool "duplicate rejected" true (Kfs.Cowfs.snapshot fs ~name:"s" = Error Ksim.Errno.EEXIST);
  check Alcotest.(list string) "listed" [ "s" ] (Kfs.Cowfs.snapshots fs);
  check Alcotest.bool "delete ok" true (Kfs.Cowfs.delete_snapshot fs ~name:"s" = Ok ());
  check Alcotest.bool "rollback to deleted fails" true
    (Kfs.Cowfs.rollback fs ~name:"s" = Error Ksim.Errno.ENOENT)

let test_cow_diff () =
  let fs = Kfs.Cowfs.mkfs () in
  ignore (Kfs.Cowfs.apply fs (Fs_spec.Create (p "/keep")));
  ignore (Kfs.Cowfs.apply fs (Fs_spec.Create (p "/gone")));
  ignore (Kfs.Cowfs.apply fs (Fs_spec.Create (p "/mod")));
  ignore (Kfs.Cowfs.snapshot fs ~name:"base");
  ignore (Kfs.Cowfs.apply fs (Fs_spec.Unlink (p "/gone")));
  ignore (Kfs.Cowfs.apply fs (Fs_spec.Write { file = p "/mod"; off = 0; data = "x" }));
  ignore (Kfs.Cowfs.apply fs (Fs_spec.Create (p "/new")));
  match Kfs.Cowfs.diff fs ~since:"base" with
  | Error e -> fail (Ksim.Errno.to_string e)
  | Ok changes ->
      check Alcotest.int "three changes" 3 (List.length changes);
      check Alcotest.bool "added" true (List.mem (Kfs.Cowfs.Added (p "/new")) changes);
      check Alcotest.bool "removed" true (List.mem (Kfs.Cowfs.Removed (p "/gone")) changes);
      check Alcotest.bool "modified" true (List.mem (Kfs.Cowfs.Modified (p "/mod")) changes)

let test_cow_structural_sharing () =
  let fs = Kfs.Cowfs.mkfs () in
  ignore (Kfs.Cowfs.apply fs (Fs_spec.Mkdir (p "/big")));
  for i = 0 to 9 do
    ignore (Kfs.Cowfs.apply fs (Fs_spec.Create [ "big"; Printf.sprintf "f%d" i ]))
  done;
  ignore (Kfs.Cowfs.apply fs (Fs_spec.Mkdir (p "/small")));
  ignore (Kfs.Cowfs.snapshot fs ~name:"s");
  (* Touch only /small: the whole /big subtree must remain shared. *)
  ignore (Kfs.Cowfs.apply fs (Fs_spec.Create (p "/small/x")));
  match Kfs.Cowfs.shared_nodes fs ~with_snapshot:"s" with
  | Error e -> fail (Ksim.Errno.to_string e)
  | Ok shared -> check Alcotest.bool "big subtree shared (11+ nodes)" true (shared >= 11)

let test_cow_rollback_then_diverge () =
  let fs = Kfs.Cowfs.mkfs () in
  ignore (Kfs.Cowfs.apply fs (Fs_spec.Create (p "/f")));
  ignore (Kfs.Cowfs.apply fs (Fs_spec.Write { file = p "/f"; off = 0; data = "v1" }));
  ignore (Kfs.Cowfs.snapshot fs ~name:"s1");
  ignore (Kfs.Cowfs.apply fs (Fs_spec.Write { file = p "/f"; off = 0; data = "v2" }));
  ignore (Kfs.Cowfs.snapshot fs ~name:"s2");
  ignore (Kfs.Cowfs.rollback fs ~name:"s1");
  ignore (Kfs.Cowfs.apply fs (Fs_spec.Write { file = p "/f"; off = 0; data = "v3" }));
  (* Both snapshots keep their own history despite the divergence. *)
  ignore (Kfs.Cowfs.rollback fs ~name:"s2");
  check result_t "s2 intact" (Ok (Fs_spec.Data "v2"))
    (Kfs.Cowfs.apply fs (Fs_spec.Read { file = p "/f"; off = 0; len = 4 }));
  ignore (Kfs.Cowfs.rollback fs ~name:"s1");
  check result_t "s1 intact" (Ok (Fs_spec.Data "v1"))
    (Kfs.Cowfs.apply fs (Fs_spec.Read { file = p "/f"; off = 0; len = 4 }))

(* Workload ------------------------------------------------------------------------------- *)

let test_workload_deterministic () =
  let a = Kfs.Workload.generate ~seed:9 Kfs.Workload.Mixed ~ops:100 in
  let b = Kfs.Workload.generate ~seed:9 Kfs.Workload.Mixed ~ops:100 in
  check Alcotest.bool "same seed same trace" true (a = b);
  let c = Kfs.Workload.generate ~seed:10 Kfs.Workload.Mixed ~ops:100 in
  check Alcotest.bool "different seed differs" true (a <> c);
  check Alcotest.int "length" 100 (List.length a)

let test_workload_mostly_valid () =
  List.iter
    (fun profile ->
      let trace = Kfs.Workload.generate ~seed:5 profile ~ops:300 in
      let inst = Kvfs.Iface.make (module Kfs.Memfs_typed) () in
      let ok, errs = Kfs.Workload.replay inst trace in
      check Alcotest.bool
        (Kfs.Workload.profile_to_string profile ^ " mostly valid")
        true
        (ok > errs * 2))
    Kfs.Workload.all_profiles

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "kfs"
    [
      ( "differential",
        qcheck
          [
            differential "memfs_typed" (module Kfs.Memfs_typed);
            differential "memfs_unsafe(modular)" (module Kfs.Memfs_unsafe.Modular);
            differential "memfs_owned" (module Kfs.Memfs_owned);
            differential "memfs_verified" (module Kfs.Memfs_verified);
            differential "cowfs" (module Kfs.Cowfs);
            journalfs_differential;
            journalfs_group_differential;
            owned_no_violations;
            union_differential;
          ] );
      ( "smoke",
        [
          Alcotest.test_case "memfs_typed" `Quick (smoke_stage "typed" (module Kfs.Memfs_typed));
          Alcotest.test_case "memfs_unsafe" `Quick
            (smoke_stage "unsafe" (module Kfs.Memfs_unsafe.Modular));
          Alcotest.test_case "memfs_owned" `Quick (smoke_stage "owned" (module Kfs.Memfs_owned));
          Alcotest.test_case "memfs_verified" `Quick
            (smoke_stage "verified" (module Kfs.Memfs_verified));
          Alcotest.test_case "journalfs" `Quick
            (smoke_stage "journalfs" (module Kfs.Journalfs.Journaled_fs));
          Alcotest.test_case "cowfs" `Quick (smoke_stage "cowfs" (module Kfs.Cowfs));
          Alcotest.test_case "unionfs" `Quick (smoke_stage "unionfs" (module Kfs.Unionfs));
        ] );
      ( "memfs_unsafe",
        [
          Alcotest.test_case "fault-free is correct" `Quick test_unsafe_no_faults_is_correct;
          Alcotest.test_case "uaf fault oopses" `Quick test_unsafe_uaf_fault_oopses;
          Alcotest.test_case "leak fault leaks" `Quick test_unsafe_leak_fault_leaks;
          Alcotest.test_case "wrong cast confuses" `Quick test_unsafe_wrong_cast_confuses;
          Alcotest.test_case "missing errptr check" `Quick test_unsafe_missing_errptr_check_oopses;
        ] );
      ( "memfs_owned",
        [
          Alcotest.test_case "clean run, no violations" `Quick test_owned_clean_run_no_violations;
          Alcotest.test_case "unlink frees region" `Quick test_owned_unlink_frees_region;
          Alcotest.test_case "rename-over frees target" `Quick test_owned_rename_over_frees_target;
        ] );
      ( "memfs_verified",
        [ Alcotest.test_case "counts checked ops" `Quick test_verified_counts_checked_ops ] );
      ( "journalfs",
        [
          Alcotest.test_case "basic ops" `Quick test_journalfs_basic;
          Alcotest.test_case "remount preserves" `Quick test_journalfs_remount_preserves_state;
          Alcotest.test_case "crash recovers committed" `Quick
            test_journalfs_crash_without_fsync_recovers_committed;
          Alcotest.test_case "enospc paths" `Quick test_journalfs_enospc;
          Alcotest.test_case "multi-block files" `Quick test_journalfs_large_file_multiblock;
          Alcotest.test_case "direct mode loses unflushed" `Quick
            test_journalfs_direct_mode_loses_unflushed;
        ] );
      ( "unionfs",
        [
          Alcotest.test_case "reads lower" `Quick test_union_reads_lower;
          Alcotest.test_case "copy-up on write" `Quick test_union_copy_up_on_write;
          Alcotest.test_case "whiteout hides lower" `Quick test_union_whiteout_hides_lower;
          Alcotest.test_case "readdir merges/hides" `Quick test_union_readdir_merges_and_hides;
          Alcotest.test_case "dir rename EXDEV" `Quick test_union_dir_rename_exdev;
          Alcotest.test_case "file rename across layers" `Quick
            test_union_file_rename_across_layers;
          Alcotest.test_case "rmdir with lower children" `Quick
            test_union_rmdir_with_lower_children_refused;
          Alcotest.test_case "interpret merges" `Quick test_union_interpret_merges;
        ] );
      ( "cowfs",
        [
          Alcotest.test_case "snapshot isolation" `Quick test_cow_snapshot_isolation;
          Alcotest.test_case "snapshot naming" `Quick test_cow_snapshot_name_reuse;
          Alcotest.test_case "diff" `Quick test_cow_diff;
          Alcotest.test_case "structural sharing" `Quick test_cow_structural_sharing;
          Alcotest.test_case "rollback then diverge" `Quick test_cow_rollback_then_diverge;
        ] );
      ( "workload",
        [
          Alcotest.test_case "deterministic" `Quick test_workload_deterministic;
          Alcotest.test_case "mostly valid" `Quick test_workload_mostly_valid;
        ] );
    ]
