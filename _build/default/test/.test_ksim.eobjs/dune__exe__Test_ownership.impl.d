test/test_ownership.ml: Alcotest Bytes List Option Ownership QCheck2 QCheck_alcotest
