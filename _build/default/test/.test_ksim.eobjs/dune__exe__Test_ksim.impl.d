test/test_ksim.ml: Alcotest Ksim List Printf QCheck2 QCheck_alcotest Result
