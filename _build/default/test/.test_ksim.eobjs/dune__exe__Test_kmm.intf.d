test/test_kmm.mli:
