test/test_kbugs.ml: Alcotest Float Kbugs List Printf Safeos_core String
