test/test_crash.ml: Alcotest Crash Fmt Fs_spec Kblock Kfs Ksim Kspec List Printf QCheck2 QCheck_alcotest String
