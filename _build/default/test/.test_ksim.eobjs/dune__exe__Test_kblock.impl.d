test/test_kblock.ml: Alcotest Array Bytes Flags Hashtbl Kblock Ksim Kspec List Printf QCheck2 QCheck_alcotest String
