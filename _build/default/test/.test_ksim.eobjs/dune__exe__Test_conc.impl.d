test/test_conc.ml: Alcotest Bytes Conc Fs_spec Kfs Ksim Kspec List Ownership Printf QCheck2 QCheck_alcotest
