test/test_kproc.ml: Alcotest Kmm Kproc Ksim Kspec Kvfs List Printf String
