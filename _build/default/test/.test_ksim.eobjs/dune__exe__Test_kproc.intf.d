test/test_kproc.mli:
