test/test_kcve.ml: Alcotest Buffer Format Fun Kcve List Printf Safeos_core String
