test/test_kmm.ml: Alcotest Bytes Kfs Kmm Ksim Kspec Kvfs List QCheck2 QCheck_alcotest String
