test/test_kcve.mli:
