test/test_knet.mli:
