test/test_integration.ml: Alcotest Fs_spec Kfs Ksim Kspec Kvfs List Safeos_core
