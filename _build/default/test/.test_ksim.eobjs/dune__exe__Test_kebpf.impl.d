test/test_kebpf.ml: Alcotest Array Char Fmt Kebpf Kfs Kspec List Printf QCheck2 QCheck_alcotest String
