test/test_kblock.mli:
