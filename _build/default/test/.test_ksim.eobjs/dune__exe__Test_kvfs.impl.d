test/test_kvfs.ml: Alcotest Fmt Fs_spec Kfs Ksim Kspec Kvfs List QCheck2 QCheck_alcotest String
