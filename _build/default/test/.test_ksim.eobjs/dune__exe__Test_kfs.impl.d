test/test_kfs.ml: Alcotest Char Fs_spec Kblock Kfs Ksim Kspec Kvfs List Ownership Printf QCheck2 QCheck_alcotest String
