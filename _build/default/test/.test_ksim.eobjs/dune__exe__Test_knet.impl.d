test/test_knet.ml: Alcotest Fmt Knet Ksim List QCheck2 QCheck_alcotest
