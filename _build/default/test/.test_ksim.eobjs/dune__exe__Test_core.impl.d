test/test_core.ml: Alcotest Audit Fmt Interface Kfs Kspec Kvfs Level List Printf Safeos_core
