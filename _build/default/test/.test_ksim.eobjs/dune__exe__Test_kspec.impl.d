test/test_kspec.ml: Alcotest Axiom Bytes Fmt Fs_spec Kfs Ksim Kspec List Model QCheck2 QCheck_alcotest Refine String
