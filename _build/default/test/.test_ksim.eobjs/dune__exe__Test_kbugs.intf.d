test/test_kbugs.mli:
