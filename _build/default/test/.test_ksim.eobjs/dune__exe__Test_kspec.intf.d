test/test_kspec.mli:
