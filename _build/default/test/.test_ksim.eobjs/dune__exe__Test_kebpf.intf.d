test/test_kebpf.mli:
