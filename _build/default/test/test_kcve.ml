(* Tests for the Figure-2 datasets and statistics: the calibration claims
   quoted in the paper must hold of the record-level data. *)

let check = Alcotest.check
let fail = Alcotest.fail

(* Figure 2a ---------------------------------------------------------------- *)

let test_records_match_per_year_totals () =
  let derived = Kcve.Stats.cves_per_year (Kcve.Dataset.all_linux_cves ()) in
  check Alcotest.(list (pair int int)) "derived = declared" Kcve.Dataset.linux_cves_per_year
    derived

let test_hundreds_every_recent_year () =
  let per_year = Kcve.Stats.cves_per_year (Kcve.Dataset.all_linux_cves ()) in
  List.iter
    (fun (year, count) ->
      if year >= 2013 then
        check Alcotest.bool (Printf.sprintf "%d has 100+" year) true (count >= 75))
    per_year

let test_rising_trend () =
  (* The decade average keeps climbing: 1999-2009 vs 2010-2020. *)
  let per_year = Kcve.Stats.cves_per_year (Kcve.Dataset.all_linux_cves ()) in
  let avg lo hi =
    let xs = List.filter (fun (y, _) -> y >= lo && y <= hi) per_year in
    float_of_int (List.fold_left (fun a (_, n) -> a + n) 0 xs) /. float_of_int (List.length xs)
  in
  check Alcotest.bool "second decade worse" true (avg 2010 2020 > avg 1999 2009)

let test_spike_2017 () =
  let per_year = Kcve.Stats.cves_per_year (Kcve.Dataset.all_linux_cves ()) in
  let count y = try List.assoc y per_year with Not_found -> 0 in
  check Alcotest.bool "2017 is the maximum" true
    (List.for_all (fun (_, n) -> n <= count 2017) per_year)

(* Figure 2b ---------------------------------------------------------------- *)

let test_ext4_median_lag_is_seven () =
  check (Alcotest.float 0.001) "median 7 years" 7.0
    (Kcve.Stats.median_lag ~release_year:Kcve.Dataset.ext4_release_year
       (Kcve.Dataset.all_ext4_cves ()))

let test_ext4_half_after_seven_years () =
  (* The paper: "50% of CVEs in ext4 were found after 7 years or more". *)
  let frac =
    Kcve.Stats.fraction_at_or_after ~release_year:Kcve.Dataset.ext4_release_year ~lag:7
      (Kcve.Dataset.all_ext4_cves ())
  in
  check Alcotest.bool "at least half late" true (frac >= 0.5)

let test_ext4_cdf_monotone_and_complete () =
  let cdf =
    Kcve.Stats.report_lag_cdf ~release_year:Kcve.Dataset.ext4_release_year
      (Kcve.Dataset.all_ext4_cves ())
  in
  let fracs = List.map (fun (pt : Kcve.Stats.cdf_point) -> pt.Kcve.Stats.cumulative_fraction) cdf in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  check Alcotest.bool "monotone" true (monotone fracs);
  (match List.rev fracs with
  | last :: _ -> check (Alcotest.float 0.0001) "reaches 1" 1.0 last
  | [] -> fail "empty cdf");
  (match cdf with
  | first :: _ -> check Alcotest.int "starts at lag 0" 0 first.Kcve.Stats.lag_years
  | [] -> fail "empty cdf")

(* Figure 2c ---------------------------------------------------------------- *)

let test_all_three_file_systems_present () =
  List.iter
    (fun fs ->
      check Alcotest.bool (fs ^ " has history") true (Kcve.Dataset.history_of fs <> []))
    Kcve.Dataset.fs_names

let test_rates_decay_to_half_percent () =
  List.iter
    (fun fs ->
      let final = Kcve.Stats.final_rate fs in
      check Alcotest.bool (Printf.sprintf "%s tail ~0.5%% (got %.2f)" fs final) true
        (final >= 0.3 && final <= 0.7))
    Kcve.Dataset.fs_names

let test_rates_decline_from_release () =
  List.iter
    (fun fs ->
      match Kcve.Stats.bug_rate_series fs with
      | first :: _ as series ->
          let last = List.nth series (List.length series - 1) in
          check Alcotest.bool (fs ^ " declines") true
            (first.Kcve.Stats.bugs_per_loc_pct > last.Kcve.Stats.bugs_per_loc_pct)
      | [] -> fail "no series")
    Kcve.Dataset.fs_names

let test_bugs_keep_coming_after_ten_years () =
  (* "Even after 10 years, there are still new bugs." *)
  List.iter
    (fun fs ->
      let history = Kcve.Dataset.history_of fs in
      let old_years = List.filter (fun (r : Kcve.Dataset.fs_year) -> r.Kcve.Dataset.age >= 10) history in
      if old_years <> [] then
        List.iter
          (fun (r : Kcve.Dataset.fs_year) ->
            check Alcotest.bool (fs ^ " still buggy") true (r.Kcve.Dataset.bug_patches > 0))
          old_years)
    Kcve.Dataset.fs_names

let test_ages_consecutive () =
  List.iter
    (fun fs ->
      let ages = List.map (fun (r : Kcve.Dataset.fs_year) -> r.Kcve.Dataset.age) (Kcve.Dataset.history_of fs) in
      check Alcotest.(list int) (fs ^ " consecutive ages") (List.init (List.length ages) Fun.id) ages)
    Kcve.Dataset.fs_names

(* Figures render without error and contain the headline strings. ---------------- *)

let render f =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_fig2a_renders () =
  let out = render (fun ppf -> Kcve.Figures.fig2a ppf ()) in
  check Alcotest.bool "mentions 2017" true (contains out "2017");
  check Alcotest.bool "has title" true (contains out "Figure 2a")

let test_fig2b_renders () =
  let out = render (fun ppf -> Kcve.Figures.fig2b ppf ()) in
  check Alcotest.bool "median line" true (contains out "median report lag: 7.0 years")

let test_fig2c_renders () =
  let out = render (fun ppf -> Kcve.Figures.fig2c ppf ()) in
  List.iter (fun fs -> check Alcotest.bool fs true (contains out fs)) Kcve.Dataset.fs_names

let test_cwe_table_renders () =
  let out = render (fun ppf -> Kcve.Figures.cwe_table ppf ()) in
  check Alcotest.bool "42%" true (contains out "42.0%");
  check Alcotest.bool "35%" true (contains out "35.0%");
  check Alcotest.bool "23%" true (contains out "23.0%");
  check Alcotest.bool "1475" true (contains out "1475")

let test_fig1_renders () =
  let r = Safeos_core.Registry.create () in
  ignore
    (Safeos_core.Registry.register r ~name:"memfs" ~kind:Safeos_core.Registry.File_system
       ~level:Safeos_core.Level.Verified ~iface:Safeos_core.Interface.fs_interface ~loc:200 ());
  let out = render (fun ppf -> Kcve.Figures.fig1 ppf r) in
  check Alcotest.bool "literature present" true (contains out "seL4");
  check Alcotest.bool "our kernel present" true (contains out "sim:memfs");
  check Alcotest.bool "progress section" true (contains out "safety rung")

let () =
  Alcotest.run "kcve"
    [
      ( "fig2a",
        [
          Alcotest.test_case "records match totals" `Quick test_records_match_per_year_totals;
          Alcotest.test_case "hundreds per year" `Quick test_hundreds_every_recent_year;
          Alcotest.test_case "rising trend" `Quick test_rising_trend;
          Alcotest.test_case "2017 spike" `Quick test_spike_2017;
        ] );
      ( "fig2b",
        [
          Alcotest.test_case "median lag 7y" `Quick test_ext4_median_lag_is_seven;
          Alcotest.test_case "50% after 7y" `Quick test_ext4_half_after_seven_years;
          Alcotest.test_case "cdf monotone" `Quick test_ext4_cdf_monotone_and_complete;
        ] );
      ( "fig2c",
        [
          Alcotest.test_case "three file systems" `Quick test_all_three_file_systems_present;
          Alcotest.test_case "0.5% tails" `Quick test_rates_decay_to_half_percent;
          Alcotest.test_case "rates decline" `Quick test_rates_decline_from_release;
          Alcotest.test_case "bugs after 10 years" `Quick test_bugs_keep_coming_after_ten_years;
          Alcotest.test_case "consecutive ages" `Quick test_ages_consecutive;
        ] );
      ( "render",
        [
          Alcotest.test_case "fig2a" `Quick test_fig2a_renders;
          Alcotest.test_case "fig2b" `Quick test_fig2b_renders;
          Alcotest.test_case "fig2c" `Quick test_fig2c_renders;
          Alcotest.test_case "cwe table" `Quick test_cwe_table_renders;
          Alcotest.test_case "fig1" `Quick test_fig1_renders;
        ] );
    ]
