(* Tests for the process layer: syscall surface, shared namespace,
   isolated memory, COW spawn, crash containment, and determinism. *)

let check = Alcotest.check
let fail = Alcotest.fail

let ok = function Ok v -> v | Error e -> fail (Ksim.Errno.to_string e)

let test_hello_process () =
  let k = Kproc.Kernel.boot () in
  let pid =
    Kproc.Kernel.spawn k ~name:"hello" (fun sys ->
        let fd = ok (sys.Kproc.Kernel.openf ~flags:[ Kvfs.File_ops.O_RDWR; Kvfs.File_ops.O_CREAT ] "/greeting") in
        ignore (ok (sys.Kproc.Kernel.write fd "hello from userland"));
        ignore (ok (sys.Kproc.Kernel.close fd));
        0)
  in
  Kproc.Kernel.run k;
  check (Alcotest.option Alcotest.int) "exit 0" (Some 0) (Kproc.Kernel.exit_code k pid);
  check Alcotest.int "nothing running" 0 (Kproc.Kernel.running k);
  (* The file is visible in the kernel's namespace afterwards. *)
  match
    Kvfs.Vfs.apply (Kproc.Kernel.vfs k)
      (Kspec.Fs_spec.Read { file = Kspec.Fs_spec.path_of_string "/greeting"; off = 0; len = 64 })
  with
  | Ok (Kspec.Fs_spec.Data data) -> check Alcotest.string "content" "hello from userland" data
  | _ -> fail "file missing"

let test_processes_share_namespace () =
  let k = Kproc.Kernel.boot () in
  let writer =
    Kproc.Kernel.spawn k ~name:"writer" (fun sys ->
        let fd = ok (sys.Kproc.Kernel.openf ~flags:[ Kvfs.File_ops.O_WRONLY; Kvfs.File_ops.O_CREAT ] "/mailbox") in
        ignore (ok (sys.Kproc.Kernel.write fd "ping"));
        ignore (ok (sys.Kproc.Kernel.close fd));
        0)
  in
  let reader_result = ref "" in
  let reader =
    Kproc.Kernel.spawn k ~name:"reader" (fun sys ->
        (* Poll until the writer's file shows up: real IPC through the FS. *)
        let rec wait tries =
          if tries = 0 then 1
          else
            match sys.Kproc.Kernel.openf "/mailbox" with
            | Ok fd ->
                reader_result := ok (sys.Kproc.Kernel.read fd ~len:16);
                ignore (ok (sys.Kproc.Kernel.close fd));
                0
            | Error Ksim.Errno.ENOENT ->
                sys.Kproc.Kernel.yield ();
                wait (tries - 1)
            | Error e -> fail (Ksim.Errno.to_string e)
        in
        wait 100)
  in
  Kproc.Kernel.run k;
  check (Alcotest.option Alcotest.int) "writer ok" (Some 0) (Kproc.Kernel.exit_code k writer);
  check (Alcotest.option Alcotest.int) "reader ok" (Some 0) (Kproc.Kernel.exit_code k reader);
  check Alcotest.string "message delivered" "ping" !reader_result

let test_memory_is_private () =
  let k = Kproc.Kernel.boot () in
  let addr_of_a = ref 0 in
  let a_saw = ref "" in
  let _a =
    Kproc.Kernel.spawn k ~name:"a" (fun sys ->
        let addr = ok (sys.Kproc.Kernel.mmap ~len:64 ~prot:Kmm.Addr_space.prot_rw) in
        addr_of_a := addr;
        ok (sys.Kproc.Kernel.mwrite ~addr "secret-of-a");
        (* Let b run, then check the memory is untouched. *)
        sys.Kproc.Kernel.yield ();
        sys.Kproc.Kernel.yield ();
        a_saw := ok (sys.Kproc.Kernel.mread ~addr ~len:11);
        0)
  in
  let b_result = ref (Ok "") in
  let _b =
    Kproc.Kernel.spawn k ~name:"b" (fun sys ->
        (* b maps its own memory at (very likely) the same virtual address:
           separate address spaces, no interference. *)
        let addr = ok (sys.Kproc.Kernel.mmap ~len:64 ~prot:Kmm.Addr_space.prot_rw) in
        b_result := sys.Kproc.Kernel.mread ~addr ~len:11;
        ok (sys.Kproc.Kernel.mwrite ~addr "b-was-here!");
        0)
  in
  Kproc.Kernel.run k;
  check Alcotest.string "a's memory intact" "secret-of-a" !a_saw;
  (* b saw zeros, never a's secret. *)
  check Alcotest.bool "b saw zeros" true (!b_result = Ok (String.make 11 '\000'))

let test_spawn_child_cow () =
  let k = Kproc.Kernel.boot () in
  let parent_view = ref "" and child_view = ref "" in
  let _parent =
    Kproc.Kernel.spawn k ~name:"parent" (fun sys ->
        let addr = ok (sys.Kproc.Kernel.mmap ~len:32 ~prot:Kmm.Addr_space.prot_rw) in
        ok (sys.Kproc.Kernel.mwrite ~addr "inherited");
        let _child =
          sys.Kproc.Kernel.spawn_child ~name:"child" (fun csys ->
              (* The child sees the parent's memory... *)
              child_view := ok (csys.Kproc.Kernel.mread ~addr ~len:9);
              (* ...then diverges privately. *)
              ok (csys.Kproc.Kernel.mwrite ~addr "CHILDMEM!");
              0)
        in
        (* Give the child time to run and write. *)
        for _ = 1 to 10 do
          sys.Kproc.Kernel.yield ()
        done;
        parent_view := ok (sys.Kproc.Kernel.mread ~addr ~len:9);
        0)
  in
  Kproc.Kernel.run k;
  check Alcotest.string "child inherited" "inherited" !child_view;
  check Alcotest.string "parent unaffected by child write" "inherited" !parent_view

let test_crash_containment () =
  let k = Kproc.Kernel.boot () in
  let victim =
    Kproc.Kernel.spawn k ~name:"victim" (fun sys ->
        (* A wild access: EFAULT as a result, not an exception... *)
        (match sys.Kproc.Kernel.mread ~addr:0xdead000 ~len:4 with
        | Error Ksim.Errno.EFAULT -> ()
        | _ -> fail "expected EFAULT");
        (* ...and an actual uncaught exception segfaults only this process. *)
        failwith "null pointer dereference")
  in
  let survivor =
    Kproc.Kernel.spawn k ~name:"survivor" (fun sys ->
        ignore (ok (sys.Kproc.Kernel.mkdir "/still-alive"));
        0)
  in
  Kproc.Kernel.run k;
  check (Alcotest.option Alcotest.int) "victim segfaulted" (Some 139)
    (Kproc.Kernel.exit_code k victim);
  check (Alcotest.option Alcotest.int) "survivor fine" (Some 0)
    (Kproc.Kernel.exit_code k survivor);
  check Alcotest.(list int) "crash list" [ victim ] (Kproc.Kernel.crashed k)

let test_exit_code_plumbing () =
  let k = Kproc.Kernel.boot () in
  let p1 = Kproc.Kernel.spawn k ~name:"seven" (fun sys -> sys.Kproc.Kernel.exit 7; 0) in
  let p2 = Kproc.Kernel.spawn k ~name:"direct" (fun _ -> 3) in
  Kproc.Kernel.run k;
  check (Alcotest.option Alcotest.int) "exit 7" (Some 7) (Kproc.Kernel.exit_code k p1);
  check (Alcotest.option Alcotest.int) "return 3" (Some 3) (Kproc.Kernel.exit_code k p2);
  check (Alcotest.option Alcotest.int) "unknown pid" None (Kproc.Kernel.exit_code k 999)

let test_many_processes_deterministic () =
  let run () =
    let k = Kproc.Kernel.boot () in
    let log = ref [] in
    for i = 1 to 5 do
      ignore
        (Kproc.Kernel.spawn k ~name:(Printf.sprintf "w%d" i) (fun sys ->
             let fd =
               ok (sys.Kproc.Kernel.openf
                     ~flags:[ Kvfs.File_ops.O_WRONLY; Kvfs.File_ops.O_CREAT ]
                     (Printf.sprintf "/f%d" i))
             in
             ignore (ok (sys.Kproc.Kernel.write fd (string_of_int i)));
             log := i :: !log;
             ignore (ok (sys.Kproc.Kernel.close fd));
             0))
    done;
    Kproc.Kernel.run k;
    (!log, ok (Kvfs.File_ops.readdir (Kvfs.File_ops.create (Kproc.Kernel.vfs k)) "/"))
  in
  let log1, dir1 = run () in
  let log2, dir2 = run () in
  check Alcotest.(list int) "same schedule" log1 log2;
  check Alcotest.(list string) "same namespace" dir1 dir2;
  check Alcotest.int "five files" 5 (List.length dir1)

let test_frames_reclaimed_after_exit () =
  let k = Kproc.Kernel.boot ~frames:32 ~page_size:64 () in
  for i = 1 to 4 do
    ignore
      (Kproc.Kernel.spawn k ~name:(Printf.sprintf "hog%d" i) (fun sys ->
           let addr = ok (sys.Kproc.Kernel.mmap ~len:512 ~prot:Kmm.Addr_space.prot_rw) in
           ok (sys.Kproc.Kernel.mwrite ~addr (String.make 512 'h'));
           0))
  done;
  (* 4 hogs x 8 pages = 32 frames: only possible if exits release memory. *)
  Kproc.Kernel.run k;
  check Alcotest.int "all exited" 0 (Kproc.Kernel.running k);
  check Alcotest.(list int) "no crashes" [] (Kproc.Kernel.crashed k)

let test_pipe_producer_consumer () =
  let k = Kproc.Kernel.boot () in
  let received = ref "" in
  let _producer_consumer =
    Kproc.Kernel.spawn k ~name:"parent" (fun sys ->
        let rfd, wfd = ok (sys.Kproc.Kernel.pipe ()) in
        let consumer =
          sys.Kproc.Kernel.spawn_child ~name:"consumer" (fun csys ->
              let rec drain acc =
                match ok (csys.Kproc.Kernel.pread rfd ~len:8) with
                | "" ->
                    received := acc;
                    0
                | chunk -> drain (acc ^ chunk)
              in
              drain "")
        in
        ignore (ok (sys.Kproc.Kernel.pwrite wfd "first "));
        ignore (ok (sys.Kproc.Kernel.pwrite wfd "second "));
        ignore (ok (sys.Kproc.Kernel.pwrite wfd "third"));
        ignore (ok (sys.Kproc.Kernel.pclose wfd));
        (* EOF lets the consumer finish; wait for its code. *)
        match ok (sys.Kproc.Kernel.wait consumer) with 0 -> 0 | c -> c)
  in
  Kproc.Kernel.run k;
  check Alcotest.string "all chunks in order" "first second third" !received;
  check Alcotest.(list int) "nobody crashed" [] (Kproc.Kernel.crashed k)

let test_pipe_epipe_and_ebadf () =
  let k = Kproc.Kernel.boot () in
  let _p =
    Kproc.Kernel.spawn k ~name:"p" (fun sys ->
        let rfd, wfd = ok (sys.Kproc.Kernel.pipe ()) in
        ignore (ok (sys.Kproc.Kernel.pclose rfd));
        (match sys.Kproc.Kernel.pwrite wfd "x" with
        | Error Ksim.Errno.EPIPE -> ()
        | _ -> fail "expected EPIPE");
        (match sys.Kproc.Kernel.pread wfd ~len:1 with
        | Error Ksim.Errno.EBADF -> ()
        | _ -> fail "read on write end");
        (match sys.Kproc.Kernel.pread 42_424 ~len:1 with
        | Error Ksim.Errno.EBADF -> ()
        | _ -> fail "bogus fd");
        0)
  in
  Kproc.Kernel.run k;
  check Alcotest.(list int) "clean" [] (Kproc.Kernel.crashed k)

let test_wait_for_child () =
  let k = Kproc.Kernel.boot () in
  let observed = ref (-1) in
  let _parent =
    Kproc.Kernel.spawn k ~name:"parent" (fun sys ->
        let child =
          sys.Kproc.Kernel.spawn_child ~name:"slow-child" (fun csys ->
              for _ = 1 to 10 do
                csys.Kproc.Kernel.yield ()
              done;
              42)
        in
        observed := ok (sys.Kproc.Kernel.wait child);
        0)
  in
  Kproc.Kernel.run k;
  check Alcotest.int "saw child's code" 42 !observed

let test_wait_unknown_pid () =
  let k = Kproc.Kernel.boot () in
  let _p =
    Kproc.Kernel.spawn k ~name:"p" (fun sys ->
        match sys.Kproc.Kernel.wait 777 with
        | Error Ksim.Errno.EINVAL -> 0
        | _ -> 1)
  in
  Kproc.Kernel.run k;
  check Alcotest.(list int) "clean" [] (Kproc.Kernel.crashed k)

let () =
  Alcotest.run "kproc"
    [
      ( "kernel",
        [
          Alcotest.test_case "hello process" `Quick test_hello_process;
          Alcotest.test_case "shared namespace" `Quick test_processes_share_namespace;
          Alcotest.test_case "private memory" `Quick test_memory_is_private;
          Alcotest.test_case "spawn_child COW" `Quick test_spawn_child_cow;
          Alcotest.test_case "crash containment" `Quick test_crash_containment;
          Alcotest.test_case "exit codes" `Quick test_exit_code_plumbing;
          Alcotest.test_case "deterministic schedule" `Quick test_many_processes_deterministic;
          Alcotest.test_case "frames reclaimed" `Quick test_frames_reclaimed_after_exit;
        ] );
      ( "ipc",
        [
          Alcotest.test_case "pipe producer/consumer" `Quick test_pipe_producer_consumer;
          Alcotest.test_case "EPIPE and EBADF" `Quick test_pipe_epipe_and_ebadf;
          Alcotest.test_case "wait for child" `Quick test_wait_for_child;
          Alcotest.test_case "wait unknown pid" `Quick test_wait_unknown_pid;
        ] );
    ]
