(* Tests for the core library: the safety ladder, interface descriptors,
   the registry ratchet, the migration engine, and the Figure-1 audit. *)

let check = Alcotest.check
let fail = Alcotest.fail

let level_t = Alcotest.testable Safeos_core.Level.pp ( = )

(* Level ---------------------------------------------------------------------- *)

let test_level_order () =
  let open Safeos_core.Level in
  check Alcotest.int "five rungs" 5 (List.length all);
  check Alcotest.bool "verified >= unsafe" true (Verified >= Unsafe);
  check Alcotest.bool "unsafe < type-safe" false (Unsafe >= Type_safe);
  List.iteri (fun i level -> check Alcotest.int "rank" i (rank level)) all;
  List.iter
    (fun level -> check (Alcotest.option level_t) "of_rank roundtrip" (Some level) (of_rank (rank level)))
    all;
  check (Alcotest.option level_t) "of_rank out of range" None (of_rank 9)

let test_level_prevention_mapping () =
  let open Safeos_core.Level in
  check (Alcotest.option level_t) "type confusion at step 2" (Some Type_safe)
    (prevented_at Type_confusion);
  check (Alcotest.option level_t) "uaf at step 3" (Some Ownership_safe)
    (prevented_at Use_after_free);
  check (Alcotest.option level_t) "race at step 3" (Some Ownership_safe) (prevented_at Data_race);
  check (Alcotest.option level_t) "semantic at step 4" (Some Verified) (prevented_at Semantic);
  check (Alcotest.option level_t) "numeric unclaimed" None (prevented_at Numeric);
  check (Alcotest.option level_t) "design unclaimed" None (prevented_at Design)

let test_level_prevents_monotone () =
  (* If a rung prevents a class, every higher rung does too. *)
  let open Safeos_core.Level in
  List.iter
    (fun bug ->
      List.iter
        (fun (a, b) ->
          if rank a <= rank b && prevents a bug then
            check Alcotest.bool
              (bug_class_to_string bug ^ " monotone")
              true (prevents b bug))
        (List.concat_map (fun a -> List.map (fun b -> (a, b)) all) all))
    all_bug_classes

(* Interface -------------------------------------------------------------------- *)

let test_interface_compatibility () =
  let open Safeos_core in
  let v1 =
    Interface.v ~name:"io" ~version:1 ~supports:Level.Type_safe
      [ Interface.op "read"; Interface.op "write" ]
  in
  let v2 =
    Interface.v ~name:"io" ~version:2 ~supports:Level.Type_safe
      [ Interface.op "read"; Interface.op "write"; Interface.op "flush" ]
  in
  check Alcotest.bool "newer hosts older" true (Interface.compatible ~provided:v2 ~required:v1);
  check Alcotest.bool "older cannot host newer" false
    (Interface.compatible ~provided:v1 ~required:v2);
  let other = Interface.v ~name:"net" ~version:1 ~supports:Level.Type_safe [] in
  check Alcotest.bool "different family" false (Interface.compatible ~provided:other ~required:v1)

let test_interface_admits () =
  let open Safeos_core in
  let no_contract =
    Interface.v ~name:"x" ~version:1 ~supports:Level.Verified [ Interface.op "f" ]
  in
  check Alcotest.bool "type-safe ok without contracts" true
    (Interface.admits no_contract Level.Type_safe);
  check Alcotest.bool "ownership needs contracts" false
    (Interface.admits no_contract Level.Ownership_safe);
  check Alcotest.bool "fs_interface hosts verified" true
    (Interface.admits Interface.fs_interface Level.Verified);
  let capped =
    Interface.v ~name:"y" ~version:1 ~supports:Level.Modular [ Interface.op "f" ]
  in
  check Alcotest.bool "supports caps the level" false (Interface.admits capped Level.Type_safe)

let test_fs_interface_shape () =
  let open Safeos_core in
  check Alcotest.int "eleven ops" 11 (List.length Interface.fs_interface.Interface.ops);
  check Alcotest.bool "write declared" true
    (Interface.find_op Interface.fs_interface "write" <> None);
  List.iter
    (fun (o : Interface.op_descr) ->
      check Alcotest.bool (o.Interface.op_name ^ " has sharing contract") true
        (o.Interface.sharing <> None))
    Interface.fs_interface.Interface.ops

(* Registry ---------------------------------------------------------------------- *)

let fresh_registry () =
  let r = Safeos_core.Registry.create () in
  ignore
    (Safeos_core.Registry.register r ~name:"memfs" ~kind:Safeos_core.Registry.File_system
       ~level:Safeos_core.Level.Modular ~iface:Safeos_core.Interface.fs_interface ~loc:100
       ~instance:(Kvfs.Iface.make (module Kfs.Memfs_unsafe.Modular) ())
       ());
  r

let test_registry_register_find () =
  let r = fresh_registry () in
  (match Safeos_core.Registry.find r "memfs" with
  | Some e ->
      check level_t "level" Safeos_core.Level.Modular e.Safeos_core.Registry.level;
      check Alcotest.int "loc" 100 e.Safeos_core.Registry.loc
  | None -> fail "not found");
  check Alcotest.bool "missing is None" true (Safeos_core.Registry.find r "nope" = None);
  check Alcotest.int "one entry" 1 (List.length (Safeos_core.Registry.all r))

let test_registry_duplicate_rejected () =
  let r = fresh_registry () in
  match
    Safeos_core.Registry.register r ~name:"memfs" ~kind:Safeos_core.Registry.File_system
      ~level:Safeos_core.Level.Modular ~iface:Safeos_core.Interface.fs_interface ()
  with
  | _ -> fail "expected Incompatible"
  | exception Safeos_core.Registry.Incompatible _ -> ()

let test_registry_ratchet () =
  let r = fresh_registry () in
  (* Upgrading is fine. *)
  (match
     Safeos_core.Registry.replace r ~name:"memfs" ~level:Safeos_core.Level.Type_safe
       ~iface:Safeos_core.Interface.fs_interface ()
   with
  | Ok e -> check level_t "upgraded" Safeos_core.Level.Type_safe e.Safeos_core.Registry.level
  | Error _ -> fail "upgrade refused");
  (* Downgrading is not. *)
  (match
     Safeos_core.Registry.replace r ~name:"memfs" ~level:Safeos_core.Level.Unsafe
       ~iface:Safeos_core.Interface.fs_interface ()
   with
  | Ok _ -> fail "downgrade accepted"
  | Error (`Would_lower_level _) -> ()
  | Error _ -> fail "wrong error");
  (* Incompatible interface is not. *)
  let alien = Safeos_core.Interface.v ~name:"alien" ~version:1 ~supports:Safeos_core.Level.Verified [] in
  match
    Safeos_core.Registry.replace r ~name:"memfs" ~level:Safeos_core.Level.Verified ~iface:alien ()
  with
  | Ok _ -> fail "alien interface accepted"
  | Error (`Incompatible_interface _) -> ()
  | Error _ -> fail "wrong error"

let test_registry_history () =
  let r = fresh_registry () in
  ignore
    (Safeos_core.Registry.replace r ~name:"memfs" ~level:Safeos_core.Level.Type_safe
       ~iface:Safeos_core.Interface.fs_interface ());
  ignore
    (Safeos_core.Registry.replace r ~name:"memfs" ~level:Safeos_core.Level.Modular
       ~iface:Safeos_core.Interface.fs_interface ());
  let events = Safeos_core.Registry.history r in
  check Alcotest.int "three events" 3 (List.length events);
  match List.map (fun e -> e.Safeos_core.Registry.change) events with
  | [ Safeos_core.Registry.Registered _; Replaced _; Rejected _ ] -> ()
  | _ -> fail "unexpected history shape"

let test_registry_loc_accounting () =
  let r = fresh_registry () in
  ignore
    (Safeos_core.Registry.register r ~name:"tcp" ~kind:Safeos_core.Registry.Network
       ~level:Safeos_core.Level.Type_safe
       ~iface:(Safeos_core.Interface.v ~name:"tcp" ~version:1 ~supports:Safeos_core.Level.Verified [])
       ~loc:50 ());
  check Alcotest.int "total" 150 (Safeos_core.Registry.total_loc r);
  check Alcotest.int "at type-safe" 50
    (Safeos_core.Registry.loc_at_or_above r Safeos_core.Level.Type_safe);
  check Alcotest.int "kinds" 1
    (List.length (Safeos_core.Registry.by_kind r Safeos_core.Registry.Network))

(* Roadmap ---------------------------------------------------------------------- *)

let test_validate_accepts_spec_equivalent () =
  let v = Safeos_core.Roadmap.validate ~ops:200 (fun () -> Kvfs.Iface.make (module Kfs.Memfs_typed) ()) in
  check Alcotest.int "all ops checked" 200 v.Safeos_core.Roadmap.checked;
  check Alcotest.bool "no divergence" true (v.Safeos_core.Roadmap.divergence = None)

(* A divergent candidate: reads lie. *)
module Lying_fs : Kvfs.Iface.FS_OPS = struct
  type fs = Kfs.Memfs_typed.fs

  let fs_name = "lying"
  let stage = 2
  let mkfs = Kfs.Memfs_typed.mkfs

  let apply fs op =
    match (op, Kfs.Memfs_typed.apply fs op) with
    | Kspec.Fs_spec.Read _, Ok (Kspec.Fs_spec.Data _) -> Ok (Kspec.Fs_spec.Data "lie")
    | _, r -> r

  let interpret = Kfs.Memfs_typed.interpret
end

let test_validate_rejects_divergent () =
  let v = Safeos_core.Roadmap.validate ~ops:300 (fun () -> Kvfs.Iface.make (module Lying_fs) ()) in
  check Alcotest.bool "divergence found" true (v.Safeos_core.Roadmap.divergence <> None)

let test_full_ladder_migration () =
  let r = fresh_registry () in
  let outcomes = Safeos_core.Roadmap.run_plan ~validation_ops:150 r (Safeos_core.Roadmap.memfs_ladder ()) in
  check Alcotest.int "three steps" 3 (List.length outcomes);
  List.iter
    (fun o ->
      check Alcotest.bool
        (Fmt.str "step to %a" Safeos_core.Level.pp o.Safeos_core.Roadmap.step.Safeos_core.Roadmap.to_level)
        true (Safeos_core.Roadmap.succeeded o))
    outcomes;
  match Safeos_core.Registry.find r "memfs" with
  | Some e -> check level_t "ends verified" Safeos_core.Level.Verified e.Safeos_core.Registry.level
  | None -> fail "memfs vanished"

let test_migration_rejects_non_upgrade () =
  let r = fresh_registry () in
  let step =
    {
      Safeos_core.Roadmap.component = "memfs";
      to_level = Safeos_core.Level.Modular (* sideways, not up *);
      iface = Safeos_core.Interface.fs_interface;
      candidate = (fun () -> Kvfs.Iface.make (module Kfs.Memfs_typed) ());
      loc = 1;
      description = "";
    }
  in
  match (Safeos_core.Roadmap.run_step r step).Safeos_core.Roadmap.result with
  | Error (Safeos_core.Roadmap.Not_an_upgrade _) -> ()
  | _ -> fail "expected Not_an_upgrade"

let test_migration_rejects_divergent_candidate () =
  let r = fresh_registry () in
  let step =
    {
      Safeos_core.Roadmap.component = "memfs";
      to_level = Safeos_core.Level.Type_safe;
      iface = Safeos_core.Interface.fs_interface;
      candidate = (fun () -> Kvfs.Iface.make (module Lying_fs) ());
      loc = 1;
      description = "";
    }
  in
  (match (Safeos_core.Roadmap.run_step r step).Safeos_core.Roadmap.result with
  | Error (Safeos_core.Roadmap.Validation_failed _) -> ()
  | _ -> fail "expected Validation_failed");
  (* And the registry is untouched. *)
  match Safeos_core.Registry.find r "memfs" with
  | Some e -> check level_t "unchanged" Safeos_core.Level.Modular e.Safeos_core.Registry.level
  | None -> fail "memfs vanished"

let test_migration_unknown_component () =
  let r = fresh_registry () in
  let step =
    {
      Safeos_core.Roadmap.component = "ghost";
      to_level = Safeos_core.Level.Type_safe;
      iface = Safeos_core.Interface.fs_interface;
      candidate = (fun () -> Kvfs.Iface.make (module Kfs.Memfs_typed) ());
      loc = 1;
      description = "";
    }
  in
  match (Safeos_core.Roadmap.run_step r step).Safeos_core.Roadmap.result with
  | Error Safeos_core.Roadmap.Unknown_component -> ()
  | _ -> fail "expected Unknown_component"

(* Patches (§4.5 rate of change) --------------------------------------------------- *)

let test_patch_same_level_lands () =
  let r = fresh_registry () in
  let outcome =
    Safeos_core.Roadmap.apply_patch ~validation_ops:100 r
      {
        Safeos_core.Roadmap.patch_component = "memfs";
        patch_description = "perf tweak, same level";
        replacement = (fun () -> Kvfs.Iface.make (module Kfs.Memfs_unsafe.Modular) ());
      }
  in
  check Alcotest.bool "patch landed" true (Safeos_core.Roadmap.patch_succeeded outcome);
  match Safeos_core.Registry.find r "memfs" with
  | Some e ->
      check level_t "level unchanged" Safeos_core.Level.Modular e.Safeos_core.Registry.level;
      check Alcotest.string "description updated" "perf tweak, same level"
        e.Safeos_core.Registry.description
  | None -> fail "memfs vanished"

let test_patch_divergent_rejected () =
  let r = fresh_registry () in
  let outcome =
    Safeos_core.Roadmap.apply_patch ~validation_ops:300 r
      {
        Safeos_core.Roadmap.patch_component = "memfs";
        patch_description = "a regression";
        replacement = (fun () -> Kvfs.Iface.make (module Lying_fs) ());
      }
  in
  (match outcome.Safeos_core.Roadmap.patch_result with
  | Error (Safeos_core.Roadmap.Validation_failed _) -> ()
  | _ -> fail "regression landed");
  match Safeos_core.Registry.find r "memfs" with
  | Some e ->
      check Alcotest.bool "old description intact" true
        (e.Safeos_core.Registry.description <> "a regression")
  | None -> fail "memfs vanished"

let test_patch_stream_keeps_level () =
  (* §4.5: keep up with the rate of change — a stream of patches, each
     revalidated locally; the level never regresses. *)
  let r = fresh_registry () in
  ignore (Safeos_core.Roadmap.run_plan ~validation_ops:60 r (Safeos_core.Roadmap.memfs_ladder ()));
  for i = 1 to 5 do
    let outcome =
      Safeos_core.Roadmap.apply_patch ~validation_ops:60 r
        {
          Safeos_core.Roadmap.patch_component = "memfs";
          patch_description = Printf.sprintf "patch %d" i;
          replacement = (fun () -> Kvfs.Iface.make (module Kfs.Memfs_verified) ());
        }
    in
    check Alcotest.bool (Printf.sprintf "patch %d ok" i) true
      (Safeos_core.Roadmap.patch_succeeded outcome)
  done;
  match Safeos_core.Registry.find r "memfs" with
  | Some e -> check level_t "still verified" Safeos_core.Level.Verified e.Safeos_core.Registry.level
  | None -> fail "memfs vanished"

let test_patch_unknown_component () =
  let r = fresh_registry () in
  let outcome =
    Safeos_core.Roadmap.apply_patch r
      {
        Safeos_core.Roadmap.patch_component = "ghost";
        patch_description = "";
        replacement = (fun () -> Kvfs.Iface.make (module Kfs.Memfs_typed) ());
      }
  in
  match outcome.Safeos_core.Roadmap.patch_result with
  | Error Safeos_core.Roadmap.Unknown_component -> ()
  | _ -> fail "expected Unknown_component"

(* Audit ------------------------------------------------------------------------- *)

let test_audit_literature_shape () =
  let open Safeos_core in
  check Alcotest.int "eight systems" 8 (List.length Audit.literature);
  (* The figure's diagonal: more safety, fewer lines. *)
  let loc_of level =
    List.fold_left
      (fun acc (r : Audit.row) -> if r.Audit.level = level then max acc r.Audit.loc else acc)
      0 Audit.literature
  in
  check Alcotest.bool "unsafe biggest" true (loc_of Level.Unsafe > loc_of Level.Type_safe);
  check Alcotest.bool "type > ownership" true (loc_of Level.Type_safe > loc_of Level.Ownership_safe);
  check Alcotest.bool "ownership > verified" true
    (loc_of Level.Ownership_safe > loc_of Level.Verified)

let test_audit_progress_moves () =
  let r = fresh_registry () in
  let before = Safeos_core.Audit.progress r in
  let loc_at level rows = List.assoc level rows.Safeos_core.Audit.at_or_above in
  check Alcotest.int "nothing verified yet" 0 (loc_at Safeos_core.Level.Verified before);
  ignore (Safeos_core.Roadmap.run_plan ~validation_ops:60 r (Safeos_core.Roadmap.memfs_ladder ()));
  let after = Safeos_core.Audit.progress r in
  check Alcotest.bool "verified code appeared" true (loc_at Safeos_core.Level.Verified after > 0)

let test_audit_loc_bands () =
  check Alcotest.string "tens of millions" "tens of millions" (Safeos_core.Audit.loc_band 30_000_000);
  check Alcotest.string "thousands" "thousands" (Safeos_core.Audit.loc_band 7_000);
  check Alcotest.string "hundreds of thousands" "hundreds of thousands"
    (Safeos_core.Audit.loc_band 300_000)

let () =
  Alcotest.run "safeos_core"
    [
      ( "level",
        [
          Alcotest.test_case "ordering" `Quick test_level_order;
          Alcotest.test_case "prevention mapping" `Quick test_level_prevention_mapping;
          Alcotest.test_case "prevention monotone" `Quick test_level_prevents_monotone;
        ] );
      ( "interface",
        [
          Alcotest.test_case "compatibility" `Quick test_interface_compatibility;
          Alcotest.test_case "admits" `Quick test_interface_admits;
          Alcotest.test_case "fs_interface shape" `Quick test_fs_interface_shape;
        ] );
      ( "registry",
        [
          Alcotest.test_case "register/find" `Quick test_registry_register_find;
          Alcotest.test_case "duplicate rejected" `Quick test_registry_duplicate_rejected;
          Alcotest.test_case "ratchet" `Quick test_registry_ratchet;
          Alcotest.test_case "history" `Quick test_registry_history;
          Alcotest.test_case "loc accounting" `Quick test_registry_loc_accounting;
        ] );
      ( "roadmap",
        [
          Alcotest.test_case "validate accepts correct" `Quick test_validate_accepts_spec_equivalent;
          Alcotest.test_case "validate rejects divergent" `Quick test_validate_rejects_divergent;
          Alcotest.test_case "full ladder" `Quick test_full_ladder_migration;
          Alcotest.test_case "rejects non-upgrade" `Quick test_migration_rejects_non_upgrade;
          Alcotest.test_case "rejects divergent candidate" `Quick
            test_migration_rejects_divergent_candidate;
          Alcotest.test_case "unknown component" `Quick test_migration_unknown_component;
        ] );
      ( "patches",
        [
          Alcotest.test_case "same-level patch lands" `Quick test_patch_same_level_lands;
          Alcotest.test_case "divergent patch rejected" `Quick test_patch_divergent_rejected;
          Alcotest.test_case "patch stream keeps level" `Quick test_patch_stream_keeps_level;
          Alcotest.test_case "unknown component" `Quick test_patch_unknown_component;
        ] );
      ( "audit",
        [
          Alcotest.test_case "literature shape" `Quick test_audit_literature_shape;
          Alcotest.test_case "progress moves" `Quick test_audit_progress_moves;
          Alcotest.test_case "loc bands" `Quick test_audit_loc_bands;
        ] );
    ]
