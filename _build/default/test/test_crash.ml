(* The crash-safety experiment (EXP-CRASH): the journaled file system must
   recover to a spec-allowed state after a crash at every point of every
   trace; the direct (unjournaled) twin must be convicted. *)

open Kspec

let check = Alcotest.check
let p = Fs_spec.path_of_string

(* Small deterministic traces that mix metadata and data, with an early
   fsync so lost updates are actually illegal. *)
let trace_with_fsync =
  [
    Fs_spec.Mkdir (p "/d");
    Fs_spec.Create (p "/d/f");
    Fs_spec.Write { file = p "/d/f"; off = 0; data = "synced" };
    Fs_spec.Fsync;
    Fs_spec.Write { file = p "/d/f"; off = 0; data = "later1" };
    Fs_spec.Create (p "/d/g");
    Fs_spec.Rename (p "/d/g", p "/d/h");
    Fs_spec.Write { file = p "/d/h"; off = 0; data = "tail" };
    Fs_spec.Unlink (p "/d/f");
  ]

let generated_trace seed ops =
  Kfs.Workload.generate ~seed Kfs.Workload.Mixed ~ops
  |> List.filter (fun op ->
         match op with
         | Fs_spec.Write { data; _ } -> String.length data <= 256
         | _ -> true)

let test_journaled_safe_fixed_trace () =
  let verdict =
    Crash.check (module Kfs.Journalfs.Crashable_journaled) ~images_per_point:16 trace_with_fsync
  in
  check Alcotest.int "every op crashed" (List.length trace_with_fsync) verdict.Crash.crash_points;
  check Alcotest.bool "images explored" true (verdict.Crash.images_checked > 0);
  check Alcotest.(list Alcotest.string) "no failures" []
    (List.map (Fmt.str "%a" Crash.pp_failure) verdict.Crash.failures)

let test_group_commit_safe_generated_traces () =
  (* Group commit defers durability but must never produce a non-prefix
     state: the whole uncommitted batch disappears at once. *)
  List.iter
    (fun seed ->
      let verdict =
        Crash.check
          (module Kfs.Journalfs.Crashable_journaled_group)
          ~images_per_point:8 (generated_trace seed 20)
      in
      check Alcotest.bool (Printf.sprintf "group seed %d crash-safe" seed) true
        (Crash.is_safe verdict))
    [ 11; 12; 13 ]

let test_group_commit_functional () =
  (* Group mode must be functionally identical to per-op commit. *)
  let trace = generated_trace 99 60 in
  let a = Kfs.Journalfs.Journaled_fs.mkfs () in
  let b = Kfs.Journalfs.Journaled_group_fs.mkfs () in
  List.iter2
    (fun _ op ->
      let ra = Kfs.Journalfs.apply a op and rb = Kfs.Journalfs.apply b op in
      check Alcotest.bool "same result" true (Fs_spec.equal_result ra rb))
    trace trace;
  check Alcotest.bool "same final state" true
    (Fs_spec.equal (Kfs.Journalfs.interpret a) (Kfs.Journalfs.interpret b))

let test_journaled_safe_generated_traces () =
  List.iter
    (fun seed ->
      let verdict =
        Crash.check (module Kfs.Journalfs.Crashable_journaled) ~images_per_point:8
          (generated_trace seed 20)
      in
      check Alcotest.bool (Printf.sprintf "seed %d crash-safe" seed) true (Crash.is_safe verdict))
    [ 1; 2; 3; 4; 5 ]

let test_direct_mode_convicted () =
  (* The same engine, no journal: some crash image must violate the
     crash-safe spec on a trace with an early fsync. *)
  let violations = ref 0 in
  List.iter
    (fun seed ->
      let trace = Fs_spec.Fsync :: trace_with_fsync @ generated_trace seed 15 in
      let verdict =
        Crash.check (module Kfs.Journalfs.Crashable_direct) ~images_per_point:16 trace
      in
      if not (Crash.is_safe verdict) then incr violations)
    [ 1; 2; 3 ];
  check Alcotest.bool "unjournaled FS violates crash safety" true (!violations > 0)

let test_group_commit_crash_loses_whole_batch () =
  (* Without an fsync, a crash may erase the entire uncommitted batch —
     and must erase it atomically (a legal prefix), never partially. *)
  let fs = Kfs.Journalfs.mkfs_on ~group_commit:true Kfs.Journalfs.Journaled
             (Kblock.Blockdev.create ~nblocks:1024 ~block_size:512) in
  ignore (Kfs.Journalfs.apply fs (Fs_spec.Create (p "/a")));
  ignore (Kfs.Journalfs.apply fs (Fs_spec.Create (p "/b")));
  Kblock.Blockdev.crash (Kfs.Journalfs.device fs);
  let fs2 =
    Kfs.Journalfs.mount ~group_commit:true Kfs.Journalfs.Journaled (Kfs.Journalfs.device fs)
  in
  (* Both creates were in the open (uncommitted) transaction: both gone. *)
  check Alcotest.bool "a gone" true
    (Kfs.Journalfs.apply fs2 (Fs_spec.Stat (p "/a")) = Error Ksim.Errno.ENOENT);
  check Alcotest.bool "b gone" true
    (Kfs.Journalfs.apply fs2 (Fs_spec.Stat (p "/b")) = Error Ksim.Errno.ENOENT);
  (* With an fsync, the batch commits and survives. *)
  let fs3 = Kfs.Journalfs.mkfs_on ~group_commit:true Kfs.Journalfs.Journaled
              (Kblock.Blockdev.create ~nblocks:1024 ~block_size:512) in
  ignore (Kfs.Journalfs.apply fs3 (Fs_spec.Create (p "/a")));
  ignore (Kfs.Journalfs.apply fs3 Fs_spec.Fsync);
  Kblock.Blockdev.crash (Kfs.Journalfs.device fs3);
  let fs4 =
    Kfs.Journalfs.mount ~group_commit:true Kfs.Journalfs.Journaled (Kfs.Journalfs.device fs3)
  in
  check Alcotest.bool "synced batch survives" true
    (Kfs.Journalfs.apply fs4 (Fs_spec.Stat (p "/a"))
    = Ok (Fs_spec.Attr { kind = `File; size = 0 }))

let test_journal_replay_counted () =
  (* Crash after un-checkpointed commits: remount must replay. *)
  let fs = Kfs.Journalfs.Journaled_fs.mkfs () in
  ignore (Kfs.Journalfs.apply fs (Fs_spec.Create (p "/a")));
  ignore (Kfs.Journalfs.apply fs (Fs_spec.Create (p "/b")));
  Kblock.Blockdev.crash (Kfs.Journalfs.device fs);
  let fs2 = Kfs.Journalfs.mount Kfs.Journalfs.Journaled (Kfs.Journalfs.device fs) in
  match Kfs.Journalfs.journal_stats fs2 with
  | Some stats ->
      check Alcotest.bool "replayed transactions" true (stats.Kblock.Journal.replayed_txs >= 1)
  | None -> Alcotest.fail "journal missing"

let test_fsync_checkpoint_makes_replay_unnecessary () =
  let fs = Kfs.Journalfs.Journaled_fs.mkfs () in
  ignore (Kfs.Journalfs.apply fs (Fs_spec.Create (p "/a")));
  ignore (Kfs.Journalfs.apply fs Fs_spec.Fsync);
  Kblock.Blockdev.crash (Kfs.Journalfs.device fs);
  let fs2 = Kfs.Journalfs.mount Kfs.Journalfs.Journaled (Kfs.Journalfs.device fs) in
  (match Kfs.Journalfs.journal_stats fs2 with
  | Some stats -> check Alcotest.int "nothing to replay" 0 stats.Kblock.Journal.replayed_txs
  | None -> Alcotest.fail "journal missing");
  check Alcotest.bool "state intact" true
    (Kfs.Journalfs.apply fs2 (Fs_spec.Stat (p "/a"))
    = Ok (Fs_spec.Attr { kind = `File; size = 0 }))

(* QCheck: random traces, journaled mode, always crash-safe. *)
let prop_journaled_always_crash_safe =
  QCheck2.Test.make ~name:"journalfs crash-safe on random traces" ~count:15
    QCheck2.Gen.(int_range 10 999)
    (fun seed ->
      let trace = generated_trace seed 12 in
      Crash.is_safe (Crash.check (module Kfs.Journalfs.Crashable_journaled) ~images_per_point:6 trace))

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "crash"
    [
      ( "exp-crash",
        Alcotest.test_case "journaled safe (fixed trace)" `Quick test_journaled_safe_fixed_trace
        :: Alcotest.test_case "journaled safe (generated)" `Quick
             test_journaled_safe_generated_traces
        :: Alcotest.test_case "group commit crash-safe" `Quick
             test_group_commit_safe_generated_traces
        :: Alcotest.test_case "group commit functional" `Quick test_group_commit_functional
        :: Alcotest.test_case "group commit loses whole batch" `Quick
             test_group_commit_crash_loses_whole_batch
        :: Alcotest.test_case "direct mode convicted" `Quick test_direct_mode_convicted
        :: Alcotest.test_case "replay counted" `Quick test_journal_replay_counted
        :: Alcotest.test_case "fsync checkpoint" `Quick test_fsync_checkpoint_makes_replay_unnecessary
        :: qcheck [ prop_journaled_always_crash_safe ] );
    ]
