(* Tests for the extension VM: verifier soundness, interpreter semantics,
   the attachment points, and the expressiveness-limit contrast. *)

let check = Alcotest.check
let fail = Alcotest.fail

let load_ok prog =
  match Kebpf.Vm.load prog with
  | Ok loaded -> loaded
  | Error r -> fail (Fmt.str "unexpected rejection: %a" Kebpf.Verifier.pp_rejection r)

let expect_reject prog expected_reason_fragment =
  match Kebpf.Verifier.check prog with
  | Ok () -> fail "expected rejection"
  | Error r ->
      let contains hay needle =
        let nl = String.length needle and hl = String.length hay in
        let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
        go 0
      in
      check Alcotest.bool
        (Printf.sprintf "reason %S mentions %S" r.Kebpf.Verifier.reason expected_reason_fragment)
        true
        (contains r.Kebpf.Verifier.reason expected_reason_fragment)

let exec_ok loaded ctx =
  match Kebpf.Vm.exec loaded ~ctx with
  | Ok v -> v
  | Error trap -> fail (Kebpf.Vm.trap_to_string trap)

(* Verifier ------------------------------------------------------------------ *)

let test_verifier_accepts_canned () =
  List.iter
    (fun (name, prog) ->
      match Kebpf.Verifier.check prog with
      | Ok () -> ()
      | Error r -> fail (Fmt.str "%s rejected: %a" name Kebpf.Verifier.pp_rejection r))
    [
      ("kind filter", Kebpf.Attach.packet_kind_filter ~kind:1 ~min_len:2);
      ("opcode tracer", Kebpf.Attach.opcode_tracer);
      ("large-write tracer", Kebpf.Attach.large_write_tracer ~threshold:100);
    ]

let test_verifier_rejects_backward_jump () =
  expect_reject Kebpf.Attach.looping_program "backward"

let test_verifier_rejects_empty () = expect_reject [||] "empty"

let test_verifier_rejects_fall_off_end () =
  expect_reject [| Kebpf.Insn.Mov_imm (Kebpf.Insn.R0, 1) |] "fall off"

let test_verifier_rejects_uninitialized_read () =
  expect_reject
    [| Kebpf.Insn.Mov_reg (Kebpf.Insn.R0, Kebpf.Insn.R5); Kebpf.Insn.Exit |]
    "uninitialized r5";
  (* r0 itself must be set before Exit. *)
  expect_reject [| Kebpf.Insn.Exit |] "uninitialized r0";
  (* r1 (context length) is initialized on entry. *)
  match
    Kebpf.Verifier.check [| Kebpf.Insn.Mov_reg (Kebpf.Insn.R0, Kebpf.Insn.R1); Kebpf.Insn.Exit |]
  with
  | Ok () -> ()
  | Error r -> fail (Fmt.str "%a" Kebpf.Verifier.pp_rejection r)

let test_verifier_join_intersects () =
  (* r2 is initialized on only one branch: reading it after the join must
     be rejected. *)
  expect_reject
    [|
      Kebpf.Insn.Mov_imm (Kebpf.Insn.R0, 0);
      Kebpf.Insn.Jcond (Kebpf.Insn.Eq, Kebpf.Insn.R1, 0, 1);
      Kebpf.Insn.Mov_imm (Kebpf.Insn.R2, 7);
      (* join *)
      Kebpf.Insn.Mov_reg (Kebpf.Insn.R0, Kebpf.Insn.R2);
      Kebpf.Insn.Exit;
    |]
    "uninitialized r2"

let test_verifier_rejects_oob_jump () =
  expect_reject
    [| Kebpf.Insn.Mov_imm (Kebpf.Insn.R0, 0); Kebpf.Insn.Jmp 7; Kebpf.Insn.Exit |]
    "out of bounds"

let test_verifier_rejects_div_zero_imm () =
  expect_reject
    [|
      Kebpf.Insn.Mov_imm (Kebpf.Insn.R0, 8);
      Kebpf.Insn.Alu_imm (Kebpf.Insn.Div, Kebpf.Insn.R0, 0);
      Kebpf.Insn.Exit;
    |]
    "zero"

let test_verifier_ignores_dead_code () =
  (* Dead code after an unconditional jump is not analyzed (like eBPF,
     which rejects it; we tolerate and skip — documented divergence). *)
  let prog =
    [|
      Kebpf.Insn.Mov_imm (Kebpf.Insn.R0, 1);
      Kebpf.Insn.Jmp 1;
      Kebpf.Insn.Mov_reg (Kebpf.Insn.R0, Kebpf.Insn.R7) (* dead, uninitialized *);
      Kebpf.Insn.Exit;
    |]
  in
  match Kebpf.Verifier.check prog with
  | Ok () -> ()
  | Error r -> fail (Fmt.str "%a" Kebpf.Verifier.pp_rejection r)

(* VM semantics ---------------------------------------------------------------- *)

let test_vm_arithmetic () =
  let prog =
    [|
      Kebpf.Insn.Mov_imm (Kebpf.Insn.R0, 10);
      Kebpf.Insn.Alu_imm (Kebpf.Insn.Mul, Kebpf.Insn.R0, 6);
      Kebpf.Insn.Alu_imm (Kebpf.Insn.Sub, Kebpf.Insn.R0, 18);
      Kebpf.Insn.Alu_imm (Kebpf.Insn.Div, Kebpf.Insn.R0, 7);
      Kebpf.Insn.Mov_imm (Kebpf.Insn.R2, 2);
      Kebpf.Insn.Alu_reg (Kebpf.Insn.Lsh, Kebpf.Insn.R0, Kebpf.Insn.R2);
      Kebpf.Insn.Exit;
    |]
  in
  check Alcotest.int "(10*6-18)/7 << 2" 24 (exec_ok (load_ok prog) "")

let test_vm_ctx_load_and_len () =
  let prog =
    [|
      (* r0 = ctx[1] + len *)
      Kebpf.Insn.Mov_imm (Kebpf.Insn.R2, 1);
      Kebpf.Insn.Ld_ctx (Kebpf.Insn.R0, Kebpf.Insn.R2, 0);
      Kebpf.Insn.Alu_reg (Kebpf.Insn.Add, Kebpf.Insn.R0, Kebpf.Insn.R1);
      Kebpf.Insn.Exit;
    |]
  in
  check Alcotest.int "ctx[1]+len" (Char.code 'b' + 3) (exec_ok (load_ok prog) "abc")

let test_vm_ctx_bounds_trap () =
  let prog =
    [|
      Kebpf.Insn.Mov_imm (Kebpf.Insn.R2, 100);
      Kebpf.Insn.Ld_ctx (Kebpf.Insn.R0, Kebpf.Insn.R2, 0);
      Kebpf.Insn.Exit;
    |]
  in
  match Kebpf.Vm.exec (load_ok prog) ~ctx:"abc" with
  | Ok _ -> fail "expected trap"
  | Error (Kebpf.Vm.Ctx_out_of_bounds { offset; len; _ }) ->
      check Alcotest.int "offset" 100 offset;
      check Alcotest.int "len" 3 len
  | Error trap -> fail (Kebpf.Vm.trap_to_string trap)

let test_vm_div_zero_trap () =
  let prog =
    [|
      Kebpf.Insn.Mov_imm (Kebpf.Insn.R0, 5);
      Kebpf.Insn.Mov_imm (Kebpf.Insn.R2, 0);
      Kebpf.Insn.Alu_reg (Kebpf.Insn.Div, Kebpf.Insn.R0, Kebpf.Insn.R2);
      Kebpf.Insn.Exit;
    |]
  in
  match Kebpf.Vm.exec (load_ok prog) ~ctx:"" with
  | Error (Kebpf.Vm.Division_by_zero _) -> ()
  | Ok _ -> fail "expected trap"
  | Error trap -> fail (Kebpf.Vm.trap_to_string trap)

let test_vm_branches () =
  let classify =
    [|
      (* r0 = if len < 5 then 1 else if ctx[0] = 'x' then 2 else 3 *)
      Kebpf.Insn.Mov_imm (Kebpf.Insn.R0, 1);
      Kebpf.Insn.Jcond (Kebpf.Insn.Lt, Kebpf.Insn.R1, 5, 5);
      Kebpf.Insn.Mov_imm (Kebpf.Insn.R2, 0);
      Kebpf.Insn.Ld_ctx (Kebpf.Insn.R3, Kebpf.Insn.R2, 0);
      Kebpf.Insn.Mov_imm (Kebpf.Insn.R0, 2);
      Kebpf.Insn.Jcond (Kebpf.Insn.Eq, Kebpf.Insn.R3, Char.code 'x', 1);
      Kebpf.Insn.Mov_imm (Kebpf.Insn.R0, 3);
      Kebpf.Insn.Exit;
    |]
  in
  let loaded = load_ok classify in
  check Alcotest.int "short" 1 (exec_ok loaded "ab");
  check Alcotest.int "x-prefixed" 2 (exec_ok loaded "xlong-enough");
  check Alcotest.int "other" 3 (exec_ok loaded "ylong-enough")

let test_vm_stats () =
  let loaded = load_ok Kebpf.Attach.opcode_tracer in
  ignore (exec_ok loaded "abc");
  ignore (exec_ok loaded "abc");
  let runs, insns = Kebpf.Vm.stats loaded in
  check Alcotest.int "runs" 2 runs;
  check Alcotest.int "3 insns each" 6 insns

(* Attach: packet filter --------------------------------------------------------- *)

let test_filter_accepts_and_drops () =
  let f =
    match Kebpf.Attach.attach_filter (Kebpf.Attach.packet_kind_filter ~kind:1 ~min_len:3) with
    | Ok f -> f
    | Error r -> fail (Fmt.str "%a" Kebpf.Verifier.pp_rejection r)
  in
  check Alcotest.bool "kind-1 long enough" true (Kebpf.Attach.filter_packet f "\001xx");
  check Alcotest.bool "wrong kind" false (Kebpf.Attach.filter_packet f "\002xx");
  check Alcotest.bool "too short" false (Kebpf.Attach.filter_packet f "\001");
  let accepted, dropped, traps = Kebpf.Attach.filter_stats f in
  check Alcotest.(triple int int int) "stats" (1, 2, 0) (accepted, dropped, traps)

let test_filter_trap_applies_default () =
  (* A program that always reads ctx[0] traps on the empty packet. *)
  let prog =
    [|
      Kebpf.Insn.Mov_imm (Kebpf.Insn.R2, 0);
      Kebpf.Insn.Ld_ctx (Kebpf.Insn.R0, Kebpf.Insn.R2, 0);
      Kebpf.Insn.Exit;
    |]
  in
  let f =
    match Kebpf.Attach.attach_filter ~default_accept:true prog with
    | Ok f -> f
    | Error r -> fail (Fmt.str "%a" Kebpf.Verifier.pp_rejection r)
  in
  check Alcotest.bool "trap -> default accept" true (Kebpf.Attach.filter_packet f "");
  let _, _, traps = Kebpf.Attach.filter_stats f in
  check Alcotest.int "trap counted" 1 traps

let test_filter_rejects_unverified () =
  match Kebpf.Attach.attach_filter Kebpf.Attach.looping_program with
  | Ok _ -> fail "loop attached"
  | Error _ -> ()

(* Attach: fs tracer ---------------------------------------------------------------- *)

let test_tracer_counts_opcodes () =
  let tracer =
    match Kebpf.Attach.attach_tracer Kebpf.Attach.opcode_tracer with
    | Ok t -> t
    | Error r -> fail (Fmt.str "%a" Kebpf.Verifier.pp_rejection r)
  in
  let p = Kspec.Fs_spec.path_of_string in
  let ops =
    [ Kspec.Fs_spec.Create (p "/a");
      Kspec.Fs_spec.Create (p "/b");
      Kspec.Fs_spec.Write { file = p "/a"; off = 0; data = "xy" };
      Kspec.Fs_spec.Fsync ]
  in
  List.iter (Kebpf.Attach.trace_op tracer) ops;
  let buckets = Kebpf.Attach.bucket_counts tracer in
  check Alcotest.int "creates" 2 buckets.(1);
  check Alcotest.int "writes" 1 buckets.(3);
  check Alcotest.int "fsyncs" 1 buckets.(11);
  check Alcotest.int "no traps" 0 (Kebpf.Attach.tracer_traps tracer)

let test_tracer_large_writes () =
  let tracer =
    match Kebpf.Attach.attach_tracer (Kebpf.Attach.large_write_tracer ~threshold:10) with
    | Ok t -> t
    | Error r -> fail (Fmt.str "%a" Kebpf.Verifier.pp_rejection r)
  in
  let p = Kspec.Fs_spec.path_of_string in
  Kebpf.Attach.trace_op tracer (Kspec.Fs_spec.Write { file = p "/a"; off = 0; data = "tiny" });
  Kebpf.Attach.trace_op tracer
    (Kspec.Fs_spec.Write { file = p "/a"; off = 0; data = String.make 100 'x' });
  Kebpf.Attach.trace_op tracer (Kspec.Fs_spec.Stat (p "/a"));
  let buckets = Kebpf.Attach.bucket_counts tracer in
  check Alcotest.int "small+other" 2 buckets.(0);
  check Alcotest.int "large" 1 buckets.(1)

let test_tracer_over_workload () =
  let tracer =
    match Kebpf.Attach.attach_tracer Kebpf.Attach.opcode_tracer with
    | Ok t -> t
    | Error r -> fail (Fmt.str "%a" Kebpf.Verifier.pp_rejection r)
  in
  let trace = Kfs.Workload.generate ~seed:3 Kfs.Workload.Mixed ~ops:500 in
  List.iter (Kebpf.Attach.trace_op tracer) trace;
  let total = Array.fold_left ( + ) 0 (Kebpf.Attach.bucket_counts tracer) in
  check Alcotest.int "every op counted" 500 (total + Kebpf.Attach.tracer_traps tracer);
  check Alcotest.int "no traps on real ops" 0 (Kebpf.Attach.tracer_traps tracer)

(* The expressiveness limit, stated as tests -------------------------------------- *)

let test_trip_count_is_static () =
  let prog = Kebpf.Attach.packet_kind_filter ~kind:1 ~min_len:2 in
  check Alcotest.int "bounded by length" (Array.length prog) (Kebpf.Verifier.max_trip_count prog)

let test_no_loops_means_no_fs () =
  (* A directory walk needs input-dependent iteration: the only way to
     express it here is a backward jump, which the verifier refuses.
     This is the paper's "does not support complex kernel components". *)
  expect_reject Kebpf.Attach.looping_program "backward"

let test_verifier_program_length_cap () =
  let too_long = Array.make (Kebpf.Verifier.max_insns + 1) Kebpf.Insn.Exit in
  expect_reject too_long "too long"

(* QCheck robustness ----------------------------------------------------------------- *)

let gen_insn =
  let open QCheck2.Gen in
  let reg = oneofl Kebpf.Insn.all_regs in
  let alu =
    oneofl
      [ Kebpf.Insn.Add; Kebpf.Insn.Sub; Kebpf.Insn.Mul; Kebpf.Insn.Div; Kebpf.Insn.And;
        Kebpf.Insn.Or; Kebpf.Insn.Xor; Kebpf.Insn.Lsh; Kebpf.Insn.Rsh ]
  in
  let cond =
    oneofl [ Kebpf.Insn.Eq; Kebpf.Insn.Ne; Kebpf.Insn.Lt; Kebpf.Insn.Gt; Kebpf.Insn.Le;
             Kebpf.Insn.Ge ]
  in
  oneof
    [
      map2 (fun r i -> Kebpf.Insn.Mov_imm (r, i)) reg (int_range (-100) 100);
      map2 (fun a b -> Kebpf.Insn.Mov_reg (a, b)) reg reg;
      map3 (fun op r i -> Kebpf.Insn.Alu_imm (op, r, i)) alu reg (int_range (-8) 8);
      map3 (fun op a b -> Kebpf.Insn.Alu_reg (op, a, b)) alu reg reg;
      map3 (fun a b i -> Kebpf.Insn.Ld_ctx (a, b, i)) reg reg (int_range (-4) 20);
      map (fun off -> Kebpf.Insn.Jmp off) (int_range (-3) 6);
      map3
        (fun c (r, i) off -> Kebpf.Insn.Jcond (c, r, i, off))
        cond
        (pair reg (int_range 0 12))
        (int_range (-3) 6);
      return Kebpf.Insn.Exit;
    ]

let gen_program = QCheck2.Gen.(map Array.of_list (list_size (int_range 1 24) gen_insn))

let prop_verified_programs_never_harm_kernel =
  QCheck2.Test.make ~name:"verified programs terminate without exceptions" ~count:1000
    QCheck2.Gen.(pair gen_program (string_size ~gen:printable (int_range 0 16)))
    (fun (prog, ctx) ->
      match Kebpf.Vm.load prog with
      | Error _ -> true (* rejected up front: kernel never runs it *)
      | Ok loaded -> (
          (* Accepted: execution must finish without OCaml exceptions and
             within the static trip bound. *)
          match Kebpf.Vm.exec loaded ~ctx with
          | Ok _ | Error _ ->
              let _, insns = Kebpf.Vm.stats loaded in
              insns <= Kebpf.Verifier.max_trip_count prog))

let prop_verifier_deterministic =
  QCheck2.Test.make ~name:"verifier is deterministic" ~count:300 gen_program (fun prog ->
      Kebpf.Verifier.check prog = Kebpf.Verifier.check prog)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "kebpf"
    [
      ( "verifier",
        [
          Alcotest.test_case "accepts canned programs" `Quick test_verifier_accepts_canned;
          Alcotest.test_case "rejects backward jump" `Quick test_verifier_rejects_backward_jump;
          Alcotest.test_case "rejects empty" `Quick test_verifier_rejects_empty;
          Alcotest.test_case "rejects fall-off-end" `Quick test_verifier_rejects_fall_off_end;
          Alcotest.test_case "rejects uninitialized reads" `Quick
            test_verifier_rejects_uninitialized_read;
          Alcotest.test_case "join intersects init-sets" `Quick test_verifier_join_intersects;
          Alcotest.test_case "rejects out-of-bounds jump" `Quick test_verifier_rejects_oob_jump;
          Alcotest.test_case "rejects div-by-zero imm" `Quick test_verifier_rejects_div_zero_imm;
          Alcotest.test_case "skips dead code" `Quick test_verifier_ignores_dead_code;
        ] );
      ( "vm",
        [
          Alcotest.test_case "arithmetic" `Quick test_vm_arithmetic;
          Alcotest.test_case "ctx load + len" `Quick test_vm_ctx_load_and_len;
          Alcotest.test_case "ctx bounds trap" `Quick test_vm_ctx_bounds_trap;
          Alcotest.test_case "div-zero trap" `Quick test_vm_div_zero_trap;
          Alcotest.test_case "branches" `Quick test_vm_branches;
          Alcotest.test_case "stats" `Quick test_vm_stats;
        ] );
      ( "attach",
        [
          Alcotest.test_case "filter accepts/drops" `Quick test_filter_accepts_and_drops;
          Alcotest.test_case "filter trap default" `Quick test_filter_trap_applies_default;
          Alcotest.test_case "filter rejects unverified" `Quick test_filter_rejects_unverified;
          Alcotest.test_case "tracer counts opcodes" `Quick test_tracer_counts_opcodes;
          Alcotest.test_case "tracer large writes" `Quick test_tracer_large_writes;
          Alcotest.test_case "tracer over workload" `Quick test_tracer_over_workload;
        ] );
      ( "expressiveness",
        Alcotest.test_case "trip count static" `Quick test_trip_count_is_static
        :: Alcotest.test_case "program length cap" `Quick test_verifier_program_length_cap
        :: Alcotest.test_case "no loops, no fs" `Quick test_no_loops_means_no_fs
        :: qcheck [ prop_verified_programs_never_harm_kernel; prop_verifier_deterministic ] );
    ]
