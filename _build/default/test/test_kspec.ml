(* Tests for the specification layer: the abstract FS model, refinement
   checking, axiomatic block models, and the crash-safe specification. *)

open Kspec

let check = Alcotest.check
let fail = Alcotest.fail
let p = Fs_spec.path_of_string

let result_t : Fs_spec.result Alcotest.testable =
  Alcotest.testable Fs_spec.pp_result Fs_spec.equal_result

let state_t : Fs_spec.state Alcotest.testable = Alcotest.testable Fs_spec.pp Fs_spec.equal

let run ops = List.fold_left (fun st op -> fst (Fs_spec.step st op)) Fs_spec.empty ops

let step_result st op = snd (Fs_spec.step st op)

(* Paths --------------------------------------------------------------------- *)

let test_path_parsing () =
  check Alcotest.(list string) "split" [ "a"; "b" ] (p "/a/b");
  check Alcotest.(list string) "extra slashes" [ "a"; "b" ] (p "//a//b/");
  check Alcotest.(list string) "root" [] (p "/");
  check Alcotest.string "print root" "/" (Fs_spec.path_to_string []);
  check Alcotest.string "print" "/a/b" (Fs_spec.path_to_string [ "a"; "b" ])

let test_path_prefix () =
  check Alcotest.bool "prefix" true (Fs_spec.is_prefix (p "/a") (p "/a/b"));
  check Alcotest.bool "self" true (Fs_spec.is_prefix (p "/a") (p "/a"));
  check Alcotest.bool "not prefix" false (Fs_spec.is_prefix (p "/a/b") (p "/a"));
  check Alcotest.(option (list string)) "strip" (Some [ "c" ])
    (Fs_spec.strip_prefix (p "/a/b") (p "/a/b/c"));
  check Alcotest.(option (list string)) "parent" (Some [ "a" ]) (Fs_spec.parent (p "/a/b"));
  check Alcotest.(option (list string)) "parent of root" None (Fs_spec.parent []);
  check Alcotest.(option string) "basename" (Some "b") (Fs_spec.basename (p "/a/b"))

(* Basic operation semantics -------------------------------------------------- *)

let test_create_read_write () =
  let st = run [ Create (p "/f") ] in
  check result_t "read empty" (Ok (Fs_spec.Data "")) (step_result st (Read { file = p "/f"; off = 0; len = 10 }));
  let st = fst (Fs_spec.step st (Write { file = p "/f"; off = 0; data = "hello" })) in
  check result_t "read back" (Ok (Fs_spec.Data "hello"))
    (step_result st (Read { file = p "/f"; off = 0; len = 10 }));
  check result_t "partial read" (Ok (Fs_spec.Data "ell"))
    (step_result st (Read { file = p "/f"; off = 1; len = 3 }));
  check result_t "read past eof" (Ok (Fs_spec.Data ""))
    (step_result st (Read { file = p "/f"; off = 100; len = 3 }))

let test_sparse_write () =
  let st = run [ Create (p "/f"); Write { file = p "/f"; off = 3; data = "x" } ] in
  check result_t "zero filled" (Ok (Fs_spec.Data "\000\000\000x"))
    (step_result st (Read { file = p "/f"; off = 0; len = 10 }))

let test_overwrite_middle () =
  let st =
    run
      [ Create (p "/f");
        Write { file = p "/f"; off = 0; data = "abcdef" };
        Write { file = p "/f"; off = 2; data = "XY" } ]
  in
  check result_t "spliced" (Ok (Fs_spec.Data "abXYef"))
    (step_result st (Read { file = p "/f"; off = 0; len = 10 }))

let test_create_errors () =
  let st = run [ Create (p "/f") ] in
  check result_t "exists" (Error Ksim.Errno.EEXIST) (step_result st (Create (p "/f")));
  check result_t "no parent" (Error Ksim.Errno.ENOENT) (step_result st (Create (p "/d/g")));
  check result_t "parent is file" (Error Ksim.Errno.ENOENT) (step_result st (Create (p "/f/g")));
  check result_t "root" (Error Ksim.Errno.EINVAL) (step_result st (Create []))

let test_mkdir_and_nesting () =
  let st = run [ Mkdir (p "/a"); Mkdir (p "/a/b"); Create (p "/a/b/f") ] in
  check result_t "stat dir" (Ok (Fs_spec.Attr { kind = `Dir; size = 0 })) (step_result st (Stat (p "/a/b")));
  check result_t "readdir" (Ok (Fs_spec.Names [ "f" ])) (step_result st (Readdir (p "/a/b")));
  check result_t "readdir root" (Ok (Fs_spec.Names [ "a" ])) (step_result st (Readdir []))

let test_write_errors () =
  let st = run [ Mkdir (p "/d") ] in
  check result_t "write dir" (Error Ksim.Errno.EISDIR)
    (step_result st (Write { file = p "/d"; off = 0; data = "x" }));
  check result_t "write root" (Error Ksim.Errno.EISDIR)
    (step_result st (Write { file = []; off = 0; data = "x" }));
  check result_t "write missing" (Error Ksim.Errno.ENOENT)
    (step_result st (Write { file = p "/nope"; off = 0; data = "x" }));
  check result_t "negative offset" (Error Ksim.Errno.EINVAL)
    (step_result st (Write { file = p "/d"; off = -1; data = "x" }))

let test_truncate () =
  let st = run [ Create (p "/f"); Write { file = p "/f"; off = 0; data = "abcdef" } ] in
  let st = fst (Fs_spec.step st (Truncate (p "/f", 3))) in
  check result_t "shrunk" (Ok (Fs_spec.Data "abc"))
    (step_result st (Read { file = p "/f"; off = 0; len = 10 }));
  let st = fst (Fs_spec.step st (Truncate (p "/f", 5))) in
  check result_t "zero extended" (Ok (Fs_spec.Data "abc\000\000"))
    (step_result st (Read { file = p "/f"; off = 0; len = 10 }));
  check result_t "negative" (Error Ksim.Errno.EINVAL) (step_result st (Truncate (p "/f", -1)))

let test_unlink_rmdir () =
  let st = run [ Mkdir (p "/d"); Create (p "/d/f") ] in
  check result_t "unlink dir" (Error Ksim.Errno.EISDIR) (step_result st (Unlink (p "/d")));
  check result_t "rmdir nonempty" (Error Ksim.Errno.ENOTEMPTY) (step_result st (Rmdir (p "/d")));
  check result_t "rmdir file" (Error Ksim.Errno.ENOTDIR) (step_result st (Rmdir (p "/d/f")));
  let st = fst (Fs_spec.step st (Unlink (p "/d/f"))) in
  check result_t "then rmdir ok" (Ok Fs_spec.Unit) (step_result st (Rmdir (p "/d")));
  check result_t "rmdir root" (Error Ksim.Errno.EBUSY) (step_result st (Rmdir []));
  check result_t "unlink root" (Error Ksim.Errno.EISDIR) (step_result st (Unlink []))

(* Rename: the prefix-substitution relation ------------------------------------ *)

let test_rename_file () =
  let st = run [ Create (p "/a"); Write { file = p "/a"; off = 0; data = "v" }; Rename (p "/a", p "/b") ] in
  check result_t "gone" (Error Ksim.Errno.ENOENT) (step_result st (Stat (p "/a")));
  check result_t "moved" (Ok (Fs_spec.Data "v")) (step_result st (Read { file = p "/b"; off = 0; len = 2 }))

let test_rename_dir_subtree () =
  let st =
    run
      [ Mkdir (p "/x"); Mkdir (p "/x/y"); Create (p "/x/y/f");
        Write { file = p "/x/y/f"; off = 0; data = "deep" }; Rename (p "/x", p "/z") ]
  in
  (* Every key with prefix /x was substituted with /z. *)
  check result_t "deep file moved" (Ok (Fs_spec.Data "deep"))
    (step_result st (Read { file = p "/z/y/f"; off = 0; len = 10 }));
  check result_t "old root gone" (Error Ksim.Errno.ENOENT) (step_result st (Stat (p "/x")));
  check Alcotest.bool "still well-formed" true (Fs_spec.wf st)

let test_rename_over_existing_file () =
  let st =
    run
      [ Create (p "/a"); Write { file = p "/a"; off = 0; data = "new" };
        Create (p "/b"); Write { file = p "/b"; off = 0; data = "old" };
        Rename (p "/a", p "/b") ]
  in
  check result_t "replaced" (Ok (Fs_spec.Data "new"))
    (step_result st (Read { file = p "/b"; off = 0; len = 10 }))

let test_rename_errors () =
  let st = run [ Mkdir (p "/d"); Create (p "/d/f"); Create (p "/g"); Mkdir (p "/e") ] in
  check result_t "into own subtree" (Error Ksim.Errno.EINVAL)
    (step_result st (Rename (p "/d", p "/d/sub")));
  check result_t "file over dir" (Error Ksim.Errno.EISDIR)
    (step_result st (Rename (p "/g", p "/d")));
  check result_t "dir over file" (Error Ksim.Errno.ENOTDIR)
    (step_result st (Rename (p "/d", p "/g")));
  check result_t "dir over nonempty dir" (Error Ksim.Errno.ENOTEMPTY)
    (step_result st (Rename (p "/e", p "/d")));
  check result_t "missing src" (Error Ksim.Errno.ENOENT)
    (step_result st (Rename (p "/nope", p "/x")));
  check result_t "src is root" (Error Ksim.Errno.ENOENT) (step_result st (Rename ([], p "/x")));
  check result_t "dst is root" (Error Ksim.Errno.EINVAL) (step_result st (Rename (p "/g", [])));
  check result_t "rename to self" (Ok Fs_spec.Unit) (step_result st (Rename (p "/g", p "/g")))

let test_rename_dir_over_empty_dir () =
  let st = run [ Mkdir (p "/a"); Create (p "/a/f"); Mkdir (p "/b"); Rename (p "/a", p "/b") ] in
  check result_t "content moved" (Ok (Fs_spec.Names [ "f" ])) (step_result st (Readdir (p "/b")))

(* Well-formedness is preserved by arbitrary traces --------------------------- *)

let gen_name = QCheck2.Gen.oneofl [ "a"; "b"; "c"; "d" ]

let gen_path = QCheck2.Gen.(list_size (int_range 1 3) gen_name)

let gen_op =
  let open QCheck2.Gen in
  oneof
    [
      map (fun pa -> Fs_spec.Create pa) gen_path;
      map (fun pa -> Fs_spec.Mkdir pa) gen_path;
      map2
        (fun pa data -> Fs_spec.Write { file = pa; off = 0; data })
        gen_path (string_size ~gen:printable (int_range 0 8));
      map (fun pa -> Fs_spec.Read { file = pa; off = 0; len = 16 }) gen_path;
      map2 (fun pa n -> Fs_spec.Truncate (pa, n)) gen_path (int_range 0 12);
      map (fun pa -> Fs_spec.Unlink pa) gen_path;
      map (fun pa -> Fs_spec.Rmdir pa) gen_path;
      map2 (fun a b -> Fs_spec.Rename (a, b)) gen_path gen_path;
      map (fun pa -> Fs_spec.Readdir pa) gen_path;
      map (fun pa -> Fs_spec.Stat pa) gen_path;
      return Fs_spec.Fsync;
    ]

let gen_trace = QCheck2.Gen.(list_size (int_range 0 60) gen_op)

let prop_wf_preserved =
  QCheck2.Test.make ~name:"spec state stays well-formed" ~count:300 gen_trace (fun ops ->
      Fs_spec.wf (run ops))

let prop_failed_ops_preserve_state =
  QCheck2.Test.make ~name:"failed ops leave state unchanged" ~count:300 gen_trace (fun ops ->
      List.for_all
        (fun (st, op) ->
          let st', r = Fs_spec.step st op in
          match r with Error _ -> Fs_spec.equal st st' | Ok _ -> true)
        (List.fold_left
           (fun (acc, st) op -> ((st, op) :: acc, fst (Fs_spec.step st op)))
           ([], Fs_spec.empty) ops
        |> fst))

let prop_read_after_write =
  QCheck2.Test.make ~name:"read-after-write returns written data" ~count:300
    QCheck2.Gen.(pair gen_path (string_size ~gen:printable (int_range 0 16)))
    (fun (file, data) ->
      let st, created = Fs_spec.step (run [ Fs_spec.Mkdir [ "a" ]; Fs_spec.Mkdir [ "b" ] ]) (Create file) in
      match created with
      | Error _ -> true (* invalid path for a file; nothing to check *)
      | Ok _ ->
          let st, w = Fs_spec.step st (Write { file; off = 0; data }) in
          let _, r = Fs_spec.step st (Read { file; off = 0; len = String.length data }) in
          w = Ok Fs_spec.Unit && r = Ok (Fs_spec.Data data))

let prop_rename_is_prefix_substitution =
  (* The paper's definition: after rename(src, dst), the set of keys is
     exactly the old set with prefix src substituted by dst. *)
  QCheck2.Test.make ~name:"rename = prefix substitution on the path map" ~count:300
    QCheck2.Gen.(triple gen_trace gen_path gen_path)
    (fun (ops, src, dst) ->
      let st = run ops in
      let st', r = Fs_spec.step st (Fs_spec.Rename (src, dst)) in
      match r with
      | Error _ -> true
      | Ok _ when src = dst -> Fs_spec.equal st st'
      | Ok _ ->
          let expected =
            Fs_spec.Pathmap.fold
              (fun path node acc ->
                match Fs_spec.strip_prefix src path with
                | Some suffix -> Fs_spec.Pathmap.add (dst @ suffix) node acc
                | None ->
                    if Fs_spec.is_prefix dst path then acc
                    else Fs_spec.Pathmap.add path node acc)
              st Fs_spec.Pathmap.empty
          in
          Fs_spec.equal expected st')

(* Model ------------------------------------------------------------------------ *)

let test_run_trace_shapes () =
  let ops = [ Fs_spec.Create (p "/f"); Fs_spec.Stat (p "/f") ] in
  let states, results, final = Model.run_trace Fs_spec.step Fs_spec.empty ops in
  check Alcotest.int "n+1 states" 3 (List.length states);
  check Alcotest.int "n results" 2 (List.length results);
  check state_t "final = last" final (List.nth states 2)

let test_relation_of_step () =
  let rel =
    Model.relation_of_step ~state_equal:Fs_spec.equal ~result_equal:Fs_spec.equal_result
      Fs_spec.step
  in
  let st = Fs_spec.empty in
  let st', r = Fs_spec.step st (Fs_spec.Create (p "/f")) in
  check Alcotest.bool "allowed" true (rel st (Fs_spec.Create (p "/f")) (st', r));
  check Alcotest.bool "wrong result rejected" false
    (rel st (Fs_spec.Create (p "/f")) (st', Error Ksim.Errno.EIO))

(* Refinement -------------------------------------------------------------------- *)

(* A correct implementation: directly run the spec (trivially refines). *)
module Spec_impl : Refine.FS_IMPL = struct
  type t = { mutable st : Fs_spec.state }

  let name = "spec_itself"
  let create () = { st = Fs_spec.empty }

  let apply t op =
    let st', r = Fs_spec.step t.st op in
    t.st <- st';
    r

  let interpret t = t.st
end

(* A wrong implementation: unlink forgets to remove the file. *)
module Buggy_unlink : Refine.FS_IMPL = struct
  type t = { mutable st : Fs_spec.state }

  let name = "buggy_unlink"
  let create () = { st = Fs_spec.empty }

  let apply t op =
    match op with
    | Fs_spec.Unlink path when Fs_spec.Pathmap.mem path t.st ->
        Ok Fs_spec.Unit (* lies: returns success without removing *)
    | _ ->
        let st', r = Fs_spec.step t.st op in
        t.st <- st';
        r

  let interpret t = t.st
end

let test_refine_accepts_correct () =
  let trace = Kfs.Workload.generate ~seed:3 Kfs.Workload.Mixed ~ops:200 in
  match Refine.check_trace (module Spec_impl) trace with
  | Ok n -> check Alcotest.int "all checked" 200 n
  | Error d -> fail (Fmt.str "unexpected divergence: %a" Refine.pp_divergence d)

let test_refine_catches_buggy () =
  let trace =
    [ Fs_spec.Create (p "/f"); Fs_spec.Unlink (p "/f"); Fs_spec.Stat (p "/f") ]
  in
  match Refine.check_trace (module Buggy_unlink) trace with
  | Ok _ -> fail "buggy impl passed refinement"
  | Error d -> check Alcotest.int "diverges at unlink" 1 d.Refine.step_index

let test_monitor_raises_on_divergence () =
  let module M = Refine.Monitor (Buggy_unlink) in
  let t = M.create () in
  ignore (M.apply t (Fs_spec.Create (p "/f")));
  match M.apply t (Fs_spec.Unlink (p "/f")) with
  | _ -> fail "expected Refinement_failure"
  | exception Refine.Refinement_failure d ->
      check Alcotest.int "at step 1" 1 d.Refine.step_index

let test_monitor_counts_ops () =
  let module M = Refine.Monitor (Spec_impl) in
  let t = M.create () in
  ignore (M.apply t (Fs_spec.Create (p "/f")));
  ignore (M.apply t (Fs_spec.Stat (p "/f")));
  check Alcotest.int "two checked" 2 (M.checked_ops t)

(* Axioms --------------------------------------------------------------------------- *)

let test_axiom_reference_clean () =
  let shim = Axiom.shim (Axiom.reference ~nblocks:8 ~block_size:16) in
  let ops = Axiom.ops shim in
  ops.Axiom.write 3 (Bytes.make 16 'x');
  check Alcotest.string "read back" (String.make 16 'x') (Bytes.to_string (ops.Axiom.read 3));
  ops.Axiom.flush ();
  check Alcotest.int "no violations" 0 (List.length (Axiom.violations shim))

let test_axiom_catches_lying_device () =
  (* A device that forgets writes: reads always return zeros. *)
  let amnesiac =
    {
      Axiom.nblocks = 4;
      block_size = 8;
      read = (fun _ -> Bytes.make 8 '\000');
      write = (fun _ _ -> ());
      flush = (fun () -> ());
    }
  in
  let shim = Axiom.shim ~strict:false amnesiac in
  let ops = Axiom.ops shim in
  ops.Axiom.write 1 (Bytes.make 8 'a');
  ignore (ops.Axiom.read 1);
  check Alcotest.bool "violation recorded" true (Axiom.violations shim <> [])

let test_axiom_catches_short_read () =
  let short =
    {
      Axiom.nblocks = 4;
      block_size = 8;
      read = (fun _ -> Bytes.make 4 '\000') (* wrong size *);
      write = (fun _ _ -> ());
      flush = (fun () -> ());
    }
  in
  let shim = Axiom.shim short in
  (match (Axiom.ops shim).Axiom.read 0 with
  | _ -> fail "expected Axiom_violation"
  | exception Axiom.Axiom_violation v ->
      check Alcotest.string "read axiom" "read" v.Axiom.call);
  ()

let test_axiom_out_of_range () =
  let shim = Axiom.shim (Axiom.reference ~nblocks:2 ~block_size:8) in
  match (Axiom.ops shim).Axiom.read 5 with
  | _ -> fail "expected Axiom_violation"
  | exception Axiom.Axiom_violation _ -> ()

(* Crash-safe spec -------------------------------------------------------------------- *)

let test_crash_safe_fsync_boundary () =
  let open Fs_spec.Crash_safe in
  let c = init in
  let c, _ = step c (Fs_spec.Create (p "/f")) in
  let c, _ = step c (Fs_spec.Write { file = p "/f"; off = 0; data = "v" }) in
  (* No fsync yet: a crash loses everything. *)
  let crashed = crash c in
  check state_t "back to empty" Fs_spec.empty crashed.volatile;
  let c, _ = step c Fs_spec.Fsync in
  let c, _ = step c (Fs_spec.Unlink (p "/f")) in
  let crashed = crash c in
  (* The unlink was not synced: the file is back. *)
  check Alcotest.bool "file survives" true
    (Fs_spec.lookup crashed.volatile (p "/f") = Some (Fs_spec.File "v"))

let test_allowed_recoveries () =
  let ops =
    [ Fs_spec.Create (p "/a"); Fs_spec.Fsync; Fs_spec.Create (p "/b"); Fs_spec.Create (p "/c") ]
  in
  let allowed = Fs_spec.Crash_safe.allowed_recoveries ops in
  (* Prefixes at or after the fsync: {a}, {a,b}, {a,b,c}. *)
  check Alcotest.int "three states" 3 (List.length allowed);
  let has_n n = List.exists (fun st -> Fs_spec.Pathmap.cardinal st = n) allowed in
  check Alcotest.bool "sizes 1..3" true (has_n 1 && has_n 2 && has_n 3);
  (* The pre-fsync empty state is NOT allowed. *)
  check Alcotest.bool "empty disallowed" false
    (Fs_spec.Crash_safe.is_allowed_recovery ops Fs_spec.empty)

let test_allowed_recoveries_no_fsync () =
  let ops = [ Fs_spec.Create (p "/a") ] in
  (* Without any fsync, both the empty state and the post-create state are
     legal recoveries. *)
  check Alcotest.bool "empty ok" true (Fs_spec.Crash_safe.is_allowed_recovery ops Fs_spec.empty);
  check Alcotest.bool "full ok" true
    (Fs_spec.Crash_safe.is_allowed_recovery ops (run ops))

let test_allowed_recoveries_multiple_fsyncs () =
  let ops =
    [ Fs_spec.Create (p "/a"); Fs_spec.Fsync; Fs_spec.Create (p "/b"); Fs_spec.Fsync;
      Fs_spec.Create (p "/c") ]
  in
  let allowed = Fs_spec.Crash_safe.allowed_recoveries ops in
  (* Only prefixes extending the LAST fsync: {a,b} and {a,b,c}. *)
  check Alcotest.int "two states" 2 (List.length allowed);
  check Alcotest.bool "pre-last-fsync disallowed" false
    (List.exists (fun st -> Fs_spec.Pathmap.cardinal st = 1) allowed)

let test_crash_safe_failed_op_prefixes () =
  (* Failed operations are part of the history but change nothing; the
     allowed set collapses duplicates structurally via prefix states. *)
  let ops = [ Fs_spec.Create (p "/a"); Fs_spec.Create (p "/a"); Fs_spec.Fsync ] in
  let allowed = Fs_spec.Crash_safe.allowed_recoveries ops in
  check Alcotest.bool "all allowed states contain /a" true
    (List.for_all (fun st -> Fs_spec.Pathmap.mem (p "/a") st) allowed)

let prop_crash_safe_durable_allowed =
  QCheck2.Test.make ~name:"the durable state is always an allowed recovery" ~count:200 gen_trace
    (fun ops ->
      let final =
        List.fold_left
          (fun c op -> fst (Fs_spec.Crash_safe.step c op))
          Fs_spec.Crash_safe.init ops
      in
      Fs_spec.Crash_safe.is_allowed_recovery ops (Fs_spec.Crash_safe.crash final).volatile)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "kspec"
    [
      ( "paths",
        [
          Alcotest.test_case "parsing" `Quick test_path_parsing;
          Alcotest.test_case "prefix/parent/basename" `Quick test_path_prefix;
        ] );
      ( "fs_spec-ops",
        [
          Alcotest.test_case "create/read/write" `Quick test_create_read_write;
          Alcotest.test_case "sparse write" `Quick test_sparse_write;
          Alcotest.test_case "overwrite middle" `Quick test_overwrite_middle;
          Alcotest.test_case "create errors" `Quick test_create_errors;
          Alcotest.test_case "mkdir/nesting" `Quick test_mkdir_and_nesting;
          Alcotest.test_case "write errors" `Quick test_write_errors;
          Alcotest.test_case "truncate" `Quick test_truncate;
          Alcotest.test_case "unlink/rmdir" `Quick test_unlink_rmdir;
        ] );
      ( "fs_spec-rename",
        [
          Alcotest.test_case "file" `Quick test_rename_file;
          Alcotest.test_case "directory subtree" `Quick test_rename_dir_subtree;
          Alcotest.test_case "over existing file" `Quick test_rename_over_existing_file;
          Alcotest.test_case "error cases" `Quick test_rename_errors;
          Alcotest.test_case "dir over empty dir" `Quick test_rename_dir_over_empty_dir;
        ] );
      ( "fs_spec-properties",
        qcheck
          [
            prop_wf_preserved;
            prop_failed_ops_preserve_state;
            prop_read_after_write;
            prop_rename_is_prefix_substitution;
          ] );
      ( "model",
        [
          Alcotest.test_case "run_trace shapes" `Quick test_run_trace_shapes;
          Alcotest.test_case "relation of step" `Quick test_relation_of_step;
        ] );
      ( "refine",
        [
          Alcotest.test_case "accepts correct impl" `Quick test_refine_accepts_correct;
          Alcotest.test_case "catches buggy impl" `Quick test_refine_catches_buggy;
          Alcotest.test_case "monitor raises" `Quick test_monitor_raises_on_divergence;
          Alcotest.test_case "monitor counts" `Quick test_monitor_counts_ops;
        ] );
      ( "axiom",
        [
          Alcotest.test_case "reference device clean" `Quick test_axiom_reference_clean;
          Alcotest.test_case "catches lying device" `Quick test_axiom_catches_lying_device;
          Alcotest.test_case "catches short read" `Quick test_axiom_catches_short_read;
          Alcotest.test_case "out of range" `Quick test_axiom_out_of_range;
        ] );
      ( "crash-safe-spec",
        Alcotest.test_case "fsync boundary" `Quick test_crash_safe_fsync_boundary
        :: Alcotest.test_case "allowed recoveries" `Quick test_allowed_recoveries
        :: Alcotest.test_case "no fsync" `Quick test_allowed_recoveries_no_fsync
        :: Alcotest.test_case "multiple fsyncs" `Quick test_allowed_recoveries_multiple_fsyncs
        :: Alcotest.test_case "failed ops in history" `Quick test_crash_safe_failed_op_prefixes
        :: qcheck [ prop_crash_safe_durable_allowed ] );
    ]
