(* Userland on the simulated kernel: processes see only the syscall
   surface; the kernel underneath is the modular, incrementally-safer
   stack built throughout this repository.

     dune exec examples/userland.exe
*)

let ok = function Ok v -> v | Error e -> failwith (Ksim.Errno.to_string e)

let () =
  let k = Kproc.Kernel.boot () in

  (* A logging daemon: drains a spool file that other processes append to. *)
  let daemon =
    Kproc.Kernel.spawn k ~name:"logd" (fun sys ->
        ignore (sys.Kproc.Kernel.mkdir "/var");
        let collected = Buffer.create 64 in
        let rec loop idle =
          if idle > 50 then begin
            Fmt.pr "[logd] collected: %S@." (Buffer.contents collected);
            0
          end
          else
            match sys.Kproc.Kernel.openf "/var/spool" with
            | Ok fd ->
                let data = ok (sys.Kproc.Kernel.read fd ~len:256) in
                ignore (sys.Kproc.Kernel.close fd);
                ignore (sys.Kproc.Kernel.unlink "/var/spool");
                Buffer.add_string collected data;
                loop 0
            | Error Ksim.Errno.ENOENT ->
                sys.Kproc.Kernel.yield ();
                loop (idle + 1)
            | Error e -> failwith (Ksim.Errno.to_string e)
        in
        loop 0)
  in

  (* A worker: computes in private memory, reports through the FS. *)
  let worker =
    Kproc.Kernel.spawn k ~name:"worker" (fun sys ->
        let addr = ok (sys.Kproc.Kernel.mmap ~len:4096 ~prot:Kmm.Addr_space.prot_rw) in
        ok (sys.Kproc.Kernel.mwrite ~addr "42");
        (* Hand the scratch memory to a COW child for double-checking. *)
        let _child =
          sys.Kproc.Kernel.spawn_child ~name:"checker" (fun csys ->
              let v = ok (csys.Kproc.Kernel.mread ~addr ~len:2) in
              if String.equal v "42" then 0 else 1)
        in
        let fd =
          ok (sys.Kproc.Kernel.openf ~flags:[ Kvfs.File_ops.O_WRONLY; Kvfs.File_ops.O_CREAT ]
                "/var/spool")
        in
        ignore (ok (sys.Kproc.Kernel.write fd "answer=42;"));
        ignore (ok (sys.Kproc.Kernel.close fd));
        0)
  in

  (* A buggy process: it segfaults; nobody else notices. *)
  let buggy =
    Kproc.Kernel.spawn k ~name:"buggy" (fun sys ->
        match sys.Kproc.Kernel.mread ~addr:0xBAD000 ~len:8 with
        | Error Ksim.Errno.EFAULT -> failwith "chasing a wild pointer anyway"
        | _ -> 0)
  in

  Kproc.Kernel.run k;
  Fmt.pr "@.exit codes: logd=%a worker=%a buggy=%a@."
    Fmt.(option int) (Kproc.Kernel.exit_code k daemon)
    Fmt.(option int) (Kproc.Kernel.exit_code k worker)
    Fmt.(option int) (Kproc.Kernel.exit_code k buggy);
  Fmt.pr "crashed (simulated segfault, contained): pids %a@."
    Fmt.(list ~sep:comma int) (Kproc.Kernel.crashed k);
  Fmt.pr "@.the kernel namespace after the dust settles:@.";
  Kspec.Fs_spec.Pathmap.iter
    (fun path node ->
      Fmt.pr "  %-12s %s@."
        (Kspec.Fs_spec.path_to_string path)
        (match node with Kspec.Fs_spec.File _ -> "file" | Kspec.Fs_spec.Dir -> "dir"))
    (Kvfs.Vfs.interpret (Kproc.Kernel.vfs k))
