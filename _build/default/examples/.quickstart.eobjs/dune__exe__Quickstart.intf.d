examples/quickstart.mli:
