examples/crash_safety.mli:
