examples/userland.mli:
