examples/safe_extensions.mli:
