examples/quickstart.ml: Fmt Kfs Ksim Kspec Kvfs List Printf Result String
