examples/ownership_models.ml: Bytes Fmt List Ownership
