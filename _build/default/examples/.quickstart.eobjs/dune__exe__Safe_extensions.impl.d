examples/safe_extensions.ml: Char Fmt Format Kebpf Kfs Ksim Kspec List Printf String
