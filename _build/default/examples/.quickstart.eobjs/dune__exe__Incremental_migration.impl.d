examples/incremental_migration.ml: Fmt Format Kfs Kspec Kvfs List Safeos_core
