examples/incremental_migration.mli:
