examples/userland.ml: Buffer Fmt Kmm Kproc Ksim Kspec Kvfs String
