examples/ownership_models.mli:
