examples/type_confusion.mli:
