examples/type_confusion.ml: Fmt Kfs Knet Ksim
