examples/crash_safety.ml: Crash Fmt Fs_spec Kblock Kfs Kspec List Printf
