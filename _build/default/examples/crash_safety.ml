(* Crash-safety, demonstrated: the same file-system engine run twice —
   once behind the write-ahead journal, once writing in place — crashed
   after every operation, each crash image recovered and checked against
   the crash-safe specification.

     dune exec examples/crash_safety.exe
*)

open Kspec

let p = Fs_spec.path_of_string

let trace =
  [
    Fs_spec.Mkdir (p "/home");
    Fs_spec.Create (p "/home/notes.txt");
    Fs_spec.Write { file = p "/home/notes.txt"; off = 0; data = "draft 1" };
    Fs_spec.Fsync;
    (* everything below may be lost in a crash — but only as whole
       operations, never as torn ones *)
    Fs_spec.Write { file = p "/home/notes.txt"; off = 0; data = "draft 2" };
    Fs_spec.Create (p "/home/todo.txt");
    Fs_spec.Rename (p "/home/todo.txt", p "/home/plan.txt");
    Fs_spec.Write { file = p "/home/plan.txt"; off = 0; data = "ship it" };
    Fs_spec.Unlink (p "/home/notes.txt");
  ]

let report name (module F : Crash.CRASHABLE_FS) =
  let verdict = Crash.check (module F) ~images_per_point:24 trace in
  Fmt.pr "%-10s  crash points: %2d   images checked: %3d   violations: %d   -> %s@." name
    verdict.Crash.crash_points verdict.Crash.images_checked
    (List.length verdict.Crash.failures)
    (if Crash.is_safe verdict then "CRASH-SAFE" else "NOT crash-safe");
  List.iteri
    (fun i f -> if i < 4 then Fmt.pr "     %a@." Crash.pp_failure f)
    verdict.Crash.failures

let () =
  Fmt.pr "trace (%d ops, fsync after op 4):@." (List.length trace);
  List.iteri (fun i op -> Fmt.pr "  %2d. %a@." i Fs_spec.pp_op op) trace;
  Fmt.pr "@.";
  report "journaled" (module Kfs.Journalfs.Crashable_journaled);
  report "direct" (module Kfs.Journalfs.Crashable_direct);
  Fmt.pr "@.";

  (* Peek inside: what recovery actually does after a crash. *)
  let fs = Kfs.Journalfs.Journaled_fs.mkfs () in
  List.iter (fun op -> ignore (Kfs.Journalfs.apply fs op)) trace;
  Kblock.Blockdev.crash (Kfs.Journalfs.device fs);
  let recovered = Kfs.Journalfs.mount Kfs.Journalfs.Journaled (Kfs.Journalfs.device fs) in
  (match Kfs.Journalfs.journal_stats recovered with
  | Some stats ->
      Fmt.pr "after a crash at the very end, journal recovery replayed %d transaction(s)@."
        stats.Kblock.Journal.replayed_txs
  | None -> ());
  Fmt.pr "recovered namespace:@.";
  Fs_spec.Pathmap.iter
    (fun path node ->
      Fmt.pr "  %-18s %s@." (Fs_spec.path_to_string path)
        (match node with
        | Fs_spec.File content -> Printf.sprintf "file %S" content
        | Fs_spec.Dir -> "dir"))
    (Kfs.Journalfs.interpret recovered);
  Fmt.pr "@.allowed recoveries under the crash-safe spec: %d distinct states@."
    (List.length (Fs_spec.Crash_safe.allowed_recoveries trace))
