(* Quickstart: boot the simulated kernel, mount file systems, and use the
   POSIX-ish fd API.

     dune exec examples/quickstart.exe
*)

let ( let* ) = Ksim.Errno.( let* )

let or_die = function
  | Ok v -> v
  | Error e -> failwith ("unexpected error: " ^ Ksim.Errno.to_string e)

let () =
  (* 1. A VFS with a type-safe memfs at / and a journaled FS at /var. *)
  let vfs = Kvfs.Vfs.create () in
  or_die (Kvfs.Vfs.mount vfs ~at:[] (Kvfs.Iface.make (module Kfs.Memfs_typed) ()));
  or_die (Kvfs.Vfs.apply vfs (Kspec.Fs_spec.Mkdir (Kspec.Fs_spec.path_of_string "/var")) |> Result.map ignore);
  or_die
    (Kvfs.Vfs.mount vfs
       ~at:(Kspec.Fs_spec.path_of_string "/var")
       (Kvfs.Iface.make (module Kfs.Journalfs.Journaled_fs) ()));
  Fmt.pr "mounted:@.";
  List.iter
    (fun (at, name) -> Fmt.pr "  %-8s %s@." (Kspec.Fs_spec.path_to_string at) name)
    (Kvfs.Vfs.mounts vfs);

  (* 2. User-level file traffic through the fd layer. *)
  let fds = Kvfs.File_ops.create vfs in
  let result =
    let* fd = Kvfs.File_ops.openf fds ~flags:[ Kvfs.File_ops.O_RDWR; Kvfs.File_ops.O_CREAT ] "/var/hello.txt" in
    let* _ = Kvfs.File_ops.write fds fd "hello from the safer kernel\n" in
    let* _ = Kvfs.File_ops.lseek fds fd 0 Kvfs.File_ops.SEEK_SET in
    let* content = Kvfs.File_ops.read fds fd ~len:128 in
    let* () = Kvfs.File_ops.fsync fds in
    let* () = Kvfs.File_ops.close fds fd in
    Ok content
  in
  Fmt.pr "@.read back: %S@." (or_die result);

  (* 3. The namespace as one abstract state (the spec's view). *)
  let st = Kvfs.Vfs.interpret vfs in
  Fmt.pr "@.namespace (%d entries):@." (Kspec.Fs_spec.Pathmap.cardinal st);
  Kspec.Fs_spec.Pathmap.iter
    (fun path node ->
      Fmt.pr "  %-18s %s@."
        (Kspec.Fs_spec.path_to_string path)
        (match node with
        | Kspec.Fs_spec.File content -> Printf.sprintf "file (%d bytes)" (String.length content)
        | Kspec.Fs_spec.Dir -> "dir"))
    st;

  (* 4. Replay a deterministic workload and show it's all green. *)
  let inst = Kvfs.Iface.make (module Kfs.Memfs_verified) () in
  let trace = Kfs.Workload.generate ~seed:1 Kfs.Workload.Mixed ~ops:1_000 in
  let ok, errs = Kfs.Workload.replay inst trace in
  Fmt.pr "@.1000-op workload on the verified memfs: %d ok, %d expected errors@." ok errs;
  Fmt.pr "every one of those operations was refinement-checked against the spec.@."
