(* The paper's §3 roadmap, executed: one kernel component (memfs) climbs
   the safety ladder one validated step at a time, while the registry's
   ratchet refuses downgrades and broken candidates.

     dune exec examples/incremental_migration.exe
*)

let std = Format.std_formatter

let () =
  (* The kernel as shipped: memfs is C-shaped code behind a modular
     interface — roadmap step 1 already applied. *)
  let registry = Safeos_core.Registry.create () in
  ignore
    (Safeos_core.Registry.register registry ~name:"memfs"
       ~kind:Safeos_core.Registry.File_system ~level:Safeos_core.Level.Modular
       ~iface:Safeos_core.Interface.fs_interface ~loc:430
       ~description:"C idioms behind a modular interface"
       ~instance:(Kvfs.Iface.make (module Kfs.Memfs_unsafe.Modular) ())
       ());
  Fmt.pr "== before ==@.%a@.@." Safeos_core.Registry.pp registry;
  Safeos_core.Audit.render_progress std (Safeos_core.Audit.progress registry);

  (* A broken candidate is rejected by validation, not by code review. *)
  let module Lying : Kvfs.Iface.FS_OPS = struct
    include Kfs.Memfs_typed

    let fs_name = "memfs_lying"

    let apply fs op =
      match (op, Kfs.Memfs_typed.apply fs op) with
      | Kspec.Fs_spec.Read _, Ok (Kspec.Fs_spec.Data _) -> Ok (Kspec.Fs_spec.Data "42")
      | _, r -> r
  end in
  let bad_step =
    {
      Safeos_core.Roadmap.component = "memfs";
      to_level = Safeos_core.Level.Type_safe;
      iface = Safeos_core.Interface.fs_interface;
      candidate = (fun () -> Kvfs.Iface.make (module Lying) ());
      loc = 200;
      description = "a rewrite that lies on reads";
    }
  in
  Fmt.pr "@.== a broken rewrite tries to land ==@.";
  Fmt.pr "  %a@." Safeos_core.Roadmap.pp_outcome
    (Safeos_core.Roadmap.run_step registry bad_step);

  (* The real ladder: type safety -> ownership safety -> verification,
     each step validated against the specification before the swap. *)
  Fmt.pr "@.== the incremental ladder ==@.";
  List.iter
    (fun outcome -> Fmt.pr "  %a@." Safeos_core.Roadmap.pp_outcome outcome)
    (Safeos_core.Roadmap.run_plan registry (Safeos_core.Roadmap.memfs_ladder ()));

  Fmt.pr "@.== after ==@.%a@.@." Safeos_core.Registry.pp registry;
  Safeos_core.Audit.render_progress std (Safeos_core.Audit.progress registry);

  (* Figure 1, with this kernel's components plotted amid the literature. *)
  Fmt.pr "@.";
  Safeos_core.Audit.render_figure1 std (Safeos_core.Audit.figure1 registry);

  (* And the ratchet: nobody can ever bring the C version back. *)
  Fmt.pr "@.== the ratchet ==@.";
  (match
     Safeos_core.Registry.replace registry ~name:"memfs" ~level:Safeos_core.Level.Modular
       ~iface:Safeos_core.Interface.fs_interface ()
   with
  | Ok _ -> Fmt.pr "  downgrade accepted (BUG)@."
  | Error (`Would_lower_level (current, proposed)) ->
      Fmt.pr "  downgrade %a -> %a refused@." Safeos_core.Level.pp current Safeos_core.Level.pp
        proposed
  | Error _ -> Fmt.pr "  refused for another reason@.");
  Format.pp_print_flush std ()
