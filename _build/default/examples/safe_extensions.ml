(* Two ways to extend a kernel without trusting the extension.

   Part 1 — the eBPF-shaped path (related work): load a small program
   through a static verifier; it can observe and filter, but its
   expressiveness is capped (no loops), so it can never be a file system.

   Part 2 — the paper's §4.4 concurrency note: outsource pure computations
   over an immutable snapshot; the scheduler is free to interleave them
   any way it likes, and the result provably cannot change.

     dune exec examples/safe_extensions.exe
*)

let () =
  Fmt.pr "== part 1: the verified extension VM ==@.@.";
  let prog = Kebpf.Attach.packet_kind_filter ~kind:1 ~min_len:4 in
  Fmt.pr "a packet filter, as the verifier sees it:@.";
  Kebpf.Insn.pp_program Format.std_formatter prog;
  Format.pp_print_flush Format.std_formatter ();
  (match Kebpf.Attach.attach_filter prog with
  | Error r -> Fmt.pr "rejected: %a@." Kebpf.Verifier.pp_rejection r
  | Ok filter ->
      Fmt.pr "@.verifier: accepted (static trip bound: %d instructions)@."
        (Kebpf.Verifier.max_trip_count prog);
      List.iter
        (fun packet ->
          Fmt.pr "  %-24s -> %s@."
            (String.concat "" (List.map (fun c -> Printf.sprintf "%02x" (Char.code c))
                                 (List.init (String.length packet) (String.get packet))))
            (if Kebpf.Attach.filter_packet filter packet then "accept" else "drop"))
        [ "\001abcd"; "\002abcd"; "\001a"; "" ]);
  Fmt.pr "@.and the program that cannot exist:@.";
  (match Kebpf.Vm.load Kebpf.Attach.looping_program with
  | Ok _ -> Fmt.pr "  loop accepted?!@."
  | Error r ->
      Fmt.pr "  %a@." Kebpf.Verifier.pp_rejection r;
      Fmt.pr "  no loops means no directory walks: observation yes, file system no.@.");

  Fmt.pr "@.== part 2: outsourcing pure work over an immutable snapshot ==@.@.";
  (* Build a populated FS, take its abstract snapshot, fan out queries. *)
  let fs = Kfs.Memfs_typed.mkfs () in
  let trace = Kfs.Workload.generate ~seed:13 Kfs.Workload.Mixed ~ops:400 in
  List.iter (fun op -> ignore (Kfs.Memfs_typed.apply fs op)) trace;
  let snapshot = Kfs.Memfs_typed.interpret fs in
  let report =
    Kspec.Conc.outsource ~seeds:64 ~state:snapshot
      [ Kspec.Conc.count_files; Kspec.Conc.count_dirs; Kspec.Conc.total_bytes;
        Kspec.Conc.max_depth ]
  in
  Fmt.pr "four queries, 64 different schedules, %d distinct outcome(s)@."
    report.Kspec.Conc.distinct_outcomes;
  (match report.Kspec.Conc.canonical with
  | Some [ files; dirs; bytes; depth ] ->
      Fmt.pr "  files=%d dirs=%d bytes=%d max-depth=%d — same under every interleaving@."
        files dirs bytes depth
  | _ -> ());
  (* The contrast: a job with a shared side channel. *)
  let cell = ref 0 in
  let sneaky _ =
    let v = !cell in
    Ksim.Kthread.yield ();
    cell := v + 1;
    v
  in
  let racy = Kspec.Conc.outsource ~seeds:64 ~state:snapshot [ sneaky; sneaky; sneaky ] in
  Fmt.pr "@.the same harness with a hidden shared counter: %d distinct outcomes@."
    racy.Kspec.Conc.distinct_outcomes;
  Fmt.pr "  schedule-sensitivity detected: %b (this is how the harness catches impurity)@."
    (not (Kspec.Conc.is_deterministic racy))
