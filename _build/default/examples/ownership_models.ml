(* The three ownership-sharing models of §4.3, executed.

   Model 1 — ownership transfer: the caller loses all access.
   Model 2 — exclusive lend: callee reads/writes, caller suspended.
   Model 3 — shared lend: everyone reads, nobody writes.
   Baseline — copying message passing, semantically equivalent, pays
   memcpy on every hop.

     dune exec examples/ownership_models.exe
*)

let show_violation f =
  match f () with
  | _ -> Fmt.pr "     ...allowed?! (should not happen)@."
  | exception Ownership.Checker.Violation v ->
      Fmt.pr "     checker: %a@." Ownership.Checker.pp_violation v

let () =
  let ck = Ownership.Checker.create ~strict:true () in

  Fmt.pr "== model 1: ownership is passed ==@.";
  let buf = Ownership.Checker.alloc ck ~holder:"driver" ~size:64 in
  Ownership.Checker.write ck buf ~off:0 (Bytes.of_string "dma buffer");
  let nic = Ownership.Checker.transfer ck buf ~to_:"nic-queue" in
  Fmt.pr "   driver handed the buffer to the NIC queue.@.";
  Fmt.pr "   driver tries to touch it again:@.";
  show_violation (fun () -> Ownership.Checker.read ck buf ~off:0 ~len:4);
  Ownership.Checker.free ck nic;
  Fmt.pr "   the NIC queue, as owner, freed it. no leak, no double free.@.";

  Fmt.pr "@.== model 2: exclusive rights for the duration of the call ==@.";
  let page = Ownership.Checker.alloc ck ~holder:"vfs" ~size:32 in
  Ownership.Checker.lend_exclusive ck page ~to_:"filesystem" ~f:(fun fs_view ->
      Ownership.Checker.write ck fs_view ~off:0 (Bytes.of_string "block content");
      Fmt.pr "   filesystem filled the page while the VFS was locked out:@.";
      show_violation (fun () -> Ownership.Checker.read ck page ~off:0 ~len:4));
  Fmt.pr "   call returned; the VFS reads what the callee wrote: %S@."
    (Bytes.to_string (Ownership.Checker.read ck page ~off:0 ~len:13));

  Fmt.pr "@.== model 3: shared read-only rights ==@.";
  Ownership.Checker.lend_shared ck page ~to_:[ "reader-a"; "reader-b" ] ~f:(fun readers ->
      List.iter
        (fun r ->
          Fmt.pr "   %s reads %S@." r.Ownership.Cap.holder
            (Bytes.to_string (Ownership.Checker.read ck r ~off:0 ~len:5)))
        readers;
      Fmt.pr "   a reader tries to mutate:@.";
      show_violation (fun () ->
          Ownership.Checker.write ck (List.hd readers) ~off:0 (Bytes.of_string "x")));
  Ownership.Checker.free ck page;

  Fmt.pr "@.== the copying baseline ==@.";
  let ch = Ownership.Message.create () in
  let payload = Bytes.make 4096 'p' in
  let _reply = Ownership.Message.call ch payload ~f:(fun req -> Bytes.sub req 0 16) in
  Fmt.pr "   one 4 KiB request/reply round-trip copied %d bytes@."
    (Ownership.Message.bytes_copied ch);
  Fmt.pr "   the three models above copied 0 payload bytes — that is their point.@.";

  (* The explicit contract: the checker-readable form of the interface. *)
  Fmt.pr "@.== the contract, as the checker sees it ==@.";
  let contract =
    Ownership.Contract.v ~interface:"block_io"
      [
        Ownership.Contract.op ~name:"submit" [ ("bio", Ownership.Contract.Move) ];
        Ownership.Contract.op ~name:"fill" [ ("page", Ownership.Contract.Borrow_exclusive) ];
        Ownership.Contract.op ~name:"inspect" [ ("page", Ownership.Contract.Borrow_shared) ];
      ]
  in
  Fmt.pr "%a@." Ownership.Contract.pp contract;
  Fmt.pr "@.violations recorded in this demo: %d (each one a would-be kernel CVE)@."
    (Ownership.Checker.violation_count ck)
