(** The interface modeling language of §4.4.

    Abstract states are immutable values; operations are pure step
    functions; nondeterministic specifications are relations over
    before/after pairs.  An implementation is verified by {e refinement}:
    each concrete operation, viewed through an interpretation function,
    must be a valid transition of the model ({!Refine}). *)

module type STATE = sig
  type t

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

type ('st, 'op, 'res) step = 'st -> 'op -> 'st * 'res
(** Deterministic specification: a pure step function. *)

type ('st, 'op, 'res) relation = 'st -> 'op -> 'st * 'res -> bool
(** Nondeterministic specification: allowed (state, op, state', result). *)

val relation_of_step :
  state_equal:('st -> 'st -> bool) ->
  result_equal:('res -> 'res -> bool) ->
  ('st, 'op, 'res) step ->
  ('st, 'op, 'res) relation
(** View a deterministic spec as the singleton relation it denotes. *)

val run_trace :
  ('st, 'op, 'res) step -> 'st -> 'op list -> 'st list * 'res list * 'st
(** [run_trace step init ops] is [(states, results, final)] where [states]
    includes [init] and every intermediate state (length [ops]+1). *)

type ('impl, 'st) interpretation = 'impl -> 'st
(** Abstraction function from implementation state to model state. *)
