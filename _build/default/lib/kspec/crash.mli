(** Crash-safety exploration against the crash-safe spec.

    Drives an implementation through a trace, crashes it after every
    operation (enumerating the distinct post-crash images its device
    admits), recovers each image, and checks the recovered abstract state
    against {!Fs_spec.Crash_safe.allowed_recoveries}. *)

module type CRASHABLE_FS = sig
  type t

  val name : string
  val create : unit -> t
  val apply : t -> Fs_spec.op -> Fs_spec.result

  val crash_images : t -> limit:int -> t list
  (** Recovered instances reachable if the machine crashed right now —
      one per distinct surviving-write subset, already recovered. *)

  val interpret : t -> Fs_spec.state
end

type verdict = {
  ops_executed : int;
  crash_points : int;
  images_checked : int;
  failures : failure list;
}

and failure = {
  after_op : int;
  image_index : int;
  recovered : Fs_spec.state;
  allowed : Fs_spec.state list;
}

val pp_failure : Format.formatter -> failure -> unit
val is_safe : verdict -> bool

val check :
  (module CRASHABLE_FS with type t = 'a) ->
  ?images_per_point:int ->
  Fs_spec.op list ->
  verdict
(** [check (module F) ops] crashes after every op; [images_per_point]
    (default 16) bounds the crash images enumerated per crash point. *)
