lib/kspec/fs_spec.ml: Fmt Ksim List Map Model Stdlib String
