lib/kspec/fs_spec.mli: Format Ksim Map Stdlib
