lib/kspec/conc.ml: Array Fs_spec Hashtbl Ksim List Option Printf String
