lib/kspec/conc.mli: Fs_spec
