lib/kspec/axiom.mli: Format
