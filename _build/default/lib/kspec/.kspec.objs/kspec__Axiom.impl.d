lib/kspec/axiom.ml: Array Bytes Fmt Hashtbl List Printf String
