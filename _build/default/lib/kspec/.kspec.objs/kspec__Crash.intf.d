lib/kspec/crash.mli: Format Fs_spec
