lib/kspec/refine.mli: Format Fs_spec Stdlib
