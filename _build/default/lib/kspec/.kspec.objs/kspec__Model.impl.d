lib/kspec/model.ml: Format List
