lib/kspec/model.mli: Format
