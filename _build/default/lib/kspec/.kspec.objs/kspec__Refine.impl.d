lib/kspec/refine.ml: Fmt Fs_spec
