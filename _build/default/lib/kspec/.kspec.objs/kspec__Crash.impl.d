lib/kspec/crash.ml: Fmt Fs_spec List
