(* Concurrent extension of sequential verification (§4.4).

   "There are simple ways to safely layer concurrent reasoning on top of a
   single-threaded verification.  For example, outsourcing a side-effect-
   free computation by passing a reference to an immutable data structure
   is a meta-logically safe extension of a sequential verification
   result."

   [outsource] is that extension, executable: a set of jobs runs
   concurrently over one immutable abstract state, under every seeded
   interleaving the scheduler can produce; because the state is immutable
   and the jobs are pure, the result vector is provably (here: checked to
   be) identical across schedules.  [is_deterministic] runs the check; a
   job that sneaks in shared mutation is caught as schedule-sensitivity. *)

type 'a report = {
  distinct_outcomes : int;
  schedules : int;
  canonical : 'a list option; (* the per-job results, when deterministic *)
}

let run_once ~seed ~state jobs =
  let n = List.length jobs in
  let results = Array.make n None in
  let sched = Ksim.Kthread.create ~seed () in
  List.iteri
    (fun i job ->
      ignore
        (Ksim.Kthread.spawn sched ~name:(Printf.sprintf "job%d" i) (fun () ->
             (* A scheduling point before and after: the job really does
                interleave with its peers. *)
             Ksim.Kthread.yield ();
             let r = job state in
             Ksim.Kthread.yield ();
             results.(i) <- Some r)))
    jobs;
  Ksim.Kthread.run sched;
  Array.to_list results

let outsource ?(seeds = 32) ~state jobs =
  let outcomes = Hashtbl.create 4 in
  for seed = 1 to seeds do
    let outcome = run_once ~seed ~state jobs in
    let count = Option.value (Hashtbl.find_opt outcomes outcome) ~default:0 in
    Hashtbl.replace outcomes outcome (count + 1)
  done;
  let distinct = Hashtbl.length outcomes in
  let canonical =
    if distinct = 1 then
      Hashtbl.fold (fun outcome _ _ -> Some outcome) outcomes None
      |> Option.map (List.map (function Some r -> r | None -> assert false))
    else None
  in
  { distinct_outcomes = distinct; schedules = seeds; canonical }

let is_deterministic report = report.distinct_outcomes = 1

(* Common pure queries over the abstract FS state, for outsourcing. *)
let count_files st =
  Fs_spec.Pathmap.fold
    (fun _ node acc -> match node with Fs_spec.File _ -> acc + 1 | Fs_spec.Dir -> acc)
    st 0

let count_dirs st =
  Fs_spec.Pathmap.fold
    (fun _ node acc -> match node with Fs_spec.Dir -> acc + 1 | Fs_spec.File _ -> acc)
    st 0

let total_bytes st =
  Fs_spec.Pathmap.fold
    (fun _ node acc ->
      match node with Fs_spec.File c -> acc + String.length c | Fs_spec.Dir -> acc)
    st 0

let max_depth st =
  Fs_spec.Pathmap.fold (fun path _ acc -> max acc (List.length path)) st 0
