(** Abstract file-system specification (§4.4's worked example).

    "A file system can be modeled as a map from path strings to file
    content bytes."  The state is an immutable map, {!step} is a pure
    function, and directory rename is the paper's prefix-substitution
    relation.  {!Crash_safe} layers the crash-safety spec on top: a
    durable and a volatile copy, with recovery guaranteed to reach at
    least the last synced version. *)

type path = string list
(** Path components; [\[\]] is the root. *)

val path_of_string : string -> path
(** ["/a//b/"] is [\["a"; "b"\]].  Components are literal: there is no
    ["."]/[".."] resolution and no symlinks in this model. *)

val path_to_string : path -> string
val pp_path : Format.formatter -> path -> unit

val is_prefix : path -> path -> bool
val strip_prefix : path -> path -> path option
val parent : path -> path option
(** [None] for the root. *)

val basename : path -> string option

module Pathmap : Map.S with type key = path

type node =
  | File of string  (** immutable file content *)
  | Dir

type state = node Pathmap.t
(** Well-formed states bind the parent of every bound path to [Dir]; the
    root is implicitly a directory and never bound. *)

val empty : state
val equal : state -> state -> bool
val wf : state -> bool
(** Well-formedness: every bound path has a bound (or root) Dir parent. *)

val lookup : state -> path -> node option
val is_dir : state -> path -> bool
val children : state -> path -> string list
(** Immediate child names, sorted. *)

val pp : Format.formatter -> state -> unit

(** {1 Operations} *)

type op =
  | Create of path
  | Mkdir of path
  | Write of { file : path; off : int; data : string }
  | Read of { file : path; off : int; len : int }
  | Truncate of path * int
  | Unlink of path
  | Rmdir of path
  | Rename of path * path
  | Readdir of path
  | Stat of path
  | Fsync

type value =
  | Unit
  | Data of string
  | Names of string list
  | Attr of { kind : [ `File | `Dir ]; size : int }

type result = (value, Ksim.Errno.t) Stdlib.result

val equal_value : value -> value -> bool
val equal_result : result -> result -> bool
val pp_op : Format.formatter -> op -> unit
val pp_value : Format.formatter -> value -> unit
val pp_result : Format.formatter -> result -> unit

val step : state -> op -> state * result
(** The deterministic POSIX-lite semantics.  Failed operations leave the
    state unchanged. *)

val write_at : string -> off:int -> data:string -> string
(** Content after writing [data] at [off], zero-extending sparse gaps. *)

val read_at : string -> off:int -> len:int -> string
(** Up to [len] bytes from [off]; short reads at EOF. *)

(** {1 Crash-safety specification} *)

module Crash_safe : sig
  type cstate = {
    durable : state;  (** as of the last fsync *)
    volatile : state;  (** current, possibly unsynced *)
  }

  val init : cstate
  val step : cstate -> op -> cstate * result
  val crash : cstate -> cstate
  (** Lose everything since the last fsync. *)

  val allowed_recoveries : op list -> state list
  (** States a correct crash-safe FS may recover to after executing the
      trace and crashing: the volatile state after any prefix extending
      the last fsync (more than synced may persist, never less). *)

  val is_allowed_recovery : op list -> state -> bool
end
