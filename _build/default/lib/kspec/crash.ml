(* Crash-safety exploration.

   A crash-safe file system must recover, after a crash at any point, to a
   state the crash-safe spec allows: at least everything synced, at most
   the latest volatile state some prefix of the history produced, and
   nothing else.  [check] drives an implementation through a trace,
   crashes it after every operation (enumerating every distinct
   post-crash image the substrate can produce), recovers, interprets the
   recovered state, and compares against [Fs_spec.Crash_safe]. *)

module type CRASHABLE_FS = sig
  type t

  val name : string
  val create : unit -> t
  val apply : t -> Fs_spec.op -> Fs_spec.result

  val crash_images : t -> limit:int -> t list
  (** Recovered instances reachable if the machine crashed right now: one
      per distinct surviving-write subset the device admits (up to
      [limit]), each already passed through recovery. *)

  val interpret : t -> Fs_spec.state
end

type verdict = {
  ops_executed : int;
  crash_points : int;
  images_checked : int;
  failures : failure list;
}

and failure = {
  after_op : int;
  image_index : int;
  recovered : Fs_spec.state;
  allowed : Fs_spec.state list;
}

let pp_failure ppf f =
  Fmt.pf ppf
    "crash after op %d, image %d: recovered to a state not allowed by the crash-safe spec \
     (%d allowed states)"
    f.after_op f.image_index (List.length f.allowed)

let is_safe verdict = verdict.failures = []

let check (type a) (module F : CRASHABLE_FS with type t = a) ?(images_per_point = 16) ops =
  let impl = F.create () in
  let crash_points = ref 0 and images_checked = ref 0 and failures = ref [] in
  List.iteri
    (fun i op ->
      ignore (F.apply impl op);
      incr crash_points;
      let executed = List.filteri (fun j _ -> j <= i) ops in
      let allowed = Fs_spec.Crash_safe.allowed_recoveries executed in
      let images = F.crash_images impl ~limit:images_per_point in
      List.iteri
        (fun image_index image ->
          incr images_checked;
          let recovered = F.interpret image in
          if not (List.exists (fun s -> Fs_spec.equal s recovered) allowed) then
            failures := { after_op = i; image_index; recovered; allowed } :: !failures)
        images)
    ops;
  {
    ops_executed = List.length ops;
    crash_points = !crash_points;
    images_checked = !images_checked;
    failures = List.rev !failures;
  }
