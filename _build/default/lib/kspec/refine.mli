(** Refinement checking — the runtime analogue of functional verification.

    An implementation refines {!Fs_spec} when every operation, viewed
    through its interpretation (abstraction) function, is a valid
    transition of the abstract model.  {!check_trace} validates a trace
    post-hoc; {!Monitor} wraps a live implementation so each call is
    checked as it happens — this is what "verified module" means at
    roadmap step 4 inside the simulator. *)

module type FS_IMPL = sig
  type t

  val name : string
  val create : unit -> t

  val apply : t -> Fs_spec.op -> Fs_spec.result
  (** Execute one operation against the implementation. *)

  val interpret : t -> Fs_spec.state
  (** The abstraction function: "interpret its efficient, complex, mutable
      data structure as an instance of the model". *)
end

type divergence = {
  step_index : int;
  op : Fs_spec.op;
  mismatch : mismatch;
}

and mismatch =
  | Result_mismatch of { expected : Fs_spec.result; got : Fs_spec.result }
  | State_mismatch of { expected : Fs_spec.state; got : Fs_spec.state }

val pp_divergence : Format.formatter -> divergence -> unit

exception Refinement_failure of divergence

val check_step :
  step_index:int ->
  spec_state:Fs_spec.state ->
  Fs_spec.op ->
  impl_result:Fs_spec.result ->
  impl_state:Fs_spec.state ->
  (Fs_spec.state, divergence) Stdlib.result
(** Check one commuting square; returns the next spec state. *)

val check_trace :
  (module FS_IMPL with type t = 'a) -> Fs_spec.op list -> (int, divergence) Stdlib.result
(** Run the trace on a fresh instance, checking every step.  [Ok n] means
    [n] steps all refined the spec. *)

(** Wrap an implementation so every call is refinement-checked live.
    @raise Refinement_failure the moment the implementation diverges. *)
module Monitor (_ : FS_IMPL) : sig
  include FS_IMPL

  val checked_ops : t -> int
end
