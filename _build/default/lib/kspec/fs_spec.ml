(* Abstract file-system specification.

   Exactly the model the paper sketches: "a file system can be modeled as a
   map from path strings to file content bytes", with directory rename as a
   relation that substitutes a prefix in every key.  The state is an
   immutable map; [step] is a pure function; the crash-safe variant keeps a
   durable and a volatile copy and guarantees recovery to the last synced
   version. *)

type path = string list

let path_of_string s =
  String.split_on_char '/' s |> List.filter (fun c -> not (String.equal c ""))

let path_to_string = function
  | [] -> "/"
  | comps -> "/" ^ String.concat "/" comps

let pp_path ppf p = Fmt.string ppf (path_to_string p)

let rec is_prefix prefix path =
  match (prefix, path) with
  | [], _ -> true
  | p :: prefix', q :: path' -> String.equal p q && is_prefix prefix' path'
  | _ :: _, [] -> false

let rec strip_prefix prefix path =
  match (prefix, path) with
  | [], rest -> Some rest
  | p :: prefix', q :: path' when String.equal p q -> strip_prefix prefix' path'
  | _ -> None

let parent path =
  match List.rev path with [] -> None | _ :: rev_init -> Some (List.rev rev_init)

let basename path = match List.rev path with [] -> None | last :: _ -> Some last

module Pathmap = Map.Make (struct
  type t = path

  let compare = compare
end)

type node =
  | File of string (* immutable content; string for structural equality *)
  | Dir

type state = node Pathmap.t
(* Invariant (checked by [wf]): the parent of every bound path is bound to
   [Dir]; the root [[]] is implicitly a directory and never bound. *)

let empty : state = Pathmap.empty

let equal_node a b =
  match (a, b) with
  | File c1, File c2 -> String.equal c1 c2
  | Dir, Dir -> true
  | File _, Dir | Dir, File _ -> false

let equal (a : state) b = Pathmap.equal equal_node a b

let pp_node ppf = function
  | File content -> Fmt.pf ppf "file[%d bytes]" (String.length content)
  | Dir -> Fmt.string ppf "dir"

let pp ppf (st : state) =
  Fmt.pf ppf "@[<v>";
  Pathmap.iter (fun p n -> Fmt.pf ppf "%a -> %a@ " pp_path p pp_node n) st;
  Fmt.pf ppf "@]"

let is_dir st path =
  match path with [] -> true | _ -> (match Pathmap.find_opt path st with Some Dir -> true | _ -> false)

let lookup st path = Pathmap.find_opt path st

let wf (st : state) =
  Pathmap.for_all
    (fun path _ ->
      match parent path with
      | None -> false (* root must not be bound *)
      | Some p -> is_dir st p)
    st

(* Operations ----------------------------------------------------------- *)

type op =
  | Create of path
  | Mkdir of path
  | Write of { file : path; off : int; data : string }
  | Read of { file : path; off : int; len : int }
  | Truncate of path * int
  | Unlink of path
  | Rmdir of path
  | Rename of path * path
  | Readdir of path
  | Stat of path
  | Fsync

type value =
  | Unit
  | Data of string
  | Names of string list
  | Attr of { kind : [ `File | `Dir ]; size : int }

type result = (value, Ksim.Errno.t) Stdlib.result

let pp_value ppf = function
  | Unit -> Fmt.string ppf "()"
  | Data s -> Fmt.pf ppf "data[%d]" (String.length s)
  | Names ns -> Fmt.pf ppf "[%a]" (Fmt.list ~sep:(Fmt.any "; ") Fmt.string) ns
  | Attr { kind; size } ->
      Fmt.pf ppf "attr(%s, %d)" (match kind with `File -> "file" | `Dir -> "dir") size

let equal_value a b =
  match (a, b) with
  | Unit, Unit -> true
  | Data x, Data y -> String.equal x y
  | Names x, Names y -> List.equal String.equal x y
  | Attr a, Attr b -> a.kind = b.kind && a.size = b.size
  | (Unit | Data _ | Names _ | Attr _), _ -> false

let equal_result (a : result) (b : result) =
  match (a, b) with
  | Ok x, Ok y -> equal_value x y
  | Error x, Error y -> Ksim.Errno.equal x y
  | Ok _, Error _ | Error _, Ok _ -> false

let pp_op ppf = function
  | Create p -> Fmt.pf ppf "create %a" pp_path p
  | Mkdir p -> Fmt.pf ppf "mkdir %a" pp_path p
  | Write { file; off; data } ->
      Fmt.pf ppf "write %a off=%d len=%d" pp_path file off (String.length data)
  | Read { file; off; len } -> Fmt.pf ppf "read %a off=%d len=%d" pp_path file off len
  | Truncate (p, n) -> Fmt.pf ppf "truncate %a %d" pp_path p n
  | Unlink p -> Fmt.pf ppf "unlink %a" pp_path p
  | Rmdir p -> Fmt.pf ppf "rmdir %a" pp_path p
  | Rename (p, q) -> Fmt.pf ppf "rename %a %a" pp_path p pp_path q
  | Readdir p -> Fmt.pf ppf "readdir %a" pp_path p
  | Stat p -> Fmt.pf ppf "stat %a" pp_path p
  | Fsync -> Fmt.string ppf "fsync"

let pp_result = Ksim.Errno.pp_result pp_value

(* Helpers --------------------------------------------------------------- *)

let parent_ready st path =
  match parent path with
  | None -> Error Ksim.Errno.EINVAL (* operating on the root *)
  | Some p -> if is_dir st p then Ok p else Error Ksim.Errno.ENOENT

let children st dir =
  Pathmap.fold
    (fun path _ acc ->
      match strip_prefix dir path with Some [ name ] -> name :: acc | Some _ | None -> acc)
    st []
  |> List.sort String.compare

let write_at content ~off ~data =
  (* Extend with zero bytes on a sparse write, then splice. *)
  let needed = off + String.length data in
  let base =
    if String.length content >= needed then content
    else content ^ String.make (needed - String.length content) '\000'
  in
  String.concat ""
    [
      String.sub base 0 off;
      data;
      (if String.length base > needed then String.sub base needed (String.length base - needed)
       else "");
    ]

let read_at content ~off ~len =
  let size = String.length content in
  if off >= size then "" else String.sub content off (min len (size - off))

(* The step function ------------------------------------------------------ *)

let step (st : state) (op : op) : state * result =
  let err e = (st, Error e) in
  match op with
  | Create path -> (
      match parent_ready st path with
      | Error e -> err e
      | Ok _ -> (
          match lookup st path with
          | Some _ -> err Ksim.Errno.EEXIST
          | None -> (Pathmap.add path (File "") st, Ok Unit)))
  | Mkdir path -> (
      match parent_ready st path with
      | Error e -> err e
      | Ok _ -> (
          match lookup st path with
          | Some _ -> err Ksim.Errno.EEXIST
          | None -> (Pathmap.add path Dir st, Ok Unit)))
  | Write { file; off; data } -> (
      if off < 0 then err Ksim.Errno.EINVAL
      else
        match lookup st file with
        | Some (File content) ->
            (Pathmap.add file (File (write_at content ~off ~data)) st, Ok Unit)
        | Some Dir -> err Ksim.Errno.EISDIR
        | None -> if is_dir st file then err Ksim.Errno.EISDIR else err Ksim.Errno.ENOENT)
  | Read { file; off; len } -> (
      if off < 0 || len < 0 then err Ksim.Errno.EINVAL
      else
        match lookup st file with
        | Some (File content) -> (st, Ok (Data (read_at content ~off ~len)))
        | Some Dir -> err Ksim.Errno.EISDIR
        | None -> if is_dir st file then err Ksim.Errno.EISDIR else err Ksim.Errno.ENOENT)
  | Truncate (path, size) -> (
      if size < 0 then err Ksim.Errno.EINVAL
      else
        match lookup st path with
        | Some (File content) ->
            let content' =
              if String.length content >= size then String.sub content 0 size
              else content ^ String.make (size - String.length content) '\000'
            in
            (Pathmap.add path (File content') st, Ok Unit)
        | Some Dir -> err Ksim.Errno.EISDIR
        | None -> if is_dir st path then err Ksim.Errno.EISDIR else err Ksim.Errno.ENOENT)
  | Unlink path -> (
      match lookup st path with
      | Some (File _) -> (Pathmap.remove path st, Ok Unit)
      | Some Dir -> err Ksim.Errno.EISDIR
      | None -> if is_dir st path then err Ksim.Errno.EISDIR else err Ksim.Errno.ENOENT)
  | Rmdir path -> (
      match lookup st path with
      | Some Dir ->
          if children st path = [] then (Pathmap.remove path st, Ok Unit)
          else err Ksim.Errno.ENOTEMPTY
      | Some (File _) -> err Ksim.Errno.ENOTDIR
      | None -> if path = [] then err Ksim.Errno.EBUSY else err Ksim.Errno.ENOENT)
  | Rename (src, dst) -> (
      (* The paper's example relation: every path key with prefix [src] is
         substituted with prefix [dst]. *)
      match lookup st src with
      | None -> err Ksim.Errno.ENOENT
      | Some src_node -> (
          if src = [] || dst = [] then err Ksim.Errno.EINVAL
          else if is_prefix src dst && src <> dst then
            (* Moving a directory into its own subtree. *)
            err Ksim.Errno.EINVAL
          else
            match parent_ready st dst with
            | Error e -> err e
            | Ok _ -> (
                let dst_node = lookup st dst in
                let clash =
                  match (src_node, dst_node) with
                  | _, None -> Ok ()
                  | File _, Some (File _) -> Ok ()
                  | File _, Some Dir -> Error Ksim.Errno.EISDIR
                  | Dir, Some (File _) -> Error Ksim.Errno.ENOTDIR
                  | Dir, Some Dir ->
                      if children st dst = [] then Ok () else Error Ksim.Errno.ENOTEMPTY
                in
                match clash with
                | Error e -> err e
                | Ok () ->
                    if src = dst then (st, Ok Unit)
                    else
                      let st' =
                        Pathmap.fold
                          (fun path node acc ->
                            match strip_prefix src path with
                            | Some suffix -> Pathmap.add (dst @ suffix) node acc
                            | None ->
                                if is_prefix dst path then acc (* overwritten target *)
                                else Pathmap.add path node acc)
                          st Pathmap.empty
                      in
                      (st', Ok Unit))))
  | Readdir path ->
      if is_dir st path then (st, Ok (Names (children st path)))
      else if Pathmap.mem path st then err Ksim.Errno.ENOTDIR
      else err Ksim.Errno.ENOENT
  | Stat path -> (
      match lookup st path with
      | Some (File content) -> (st, Ok (Attr { kind = `File; size = String.length content }))
      | Some Dir -> (st, Ok (Attr { kind = `Dir; size = 0 }))
      | None ->
          if path = [] then (st, Ok (Attr { kind = `Dir; size = 0 }))
          else err Ksim.Errno.ENOENT)
  | Fsync -> (st, Ok Unit)

(* Crash-safe specification ---------------------------------------------- *)

module Crash_safe = struct
  type cstate = {
    durable : state;
    volatile : state;
  }

  let init = { durable = empty; volatile = empty }

  let step c op =
    let volatile', res = step c.volatile op in
    match op with
    | Fsync -> ({ durable = volatile'; volatile = volatile' }, res)
    | _ -> ({ c with volatile = volatile' }, res)

  let crash c = { durable = c.durable; volatile = c.durable }

  (* A recovered state [s] is allowed after executing [ops] iff it equals
     the volatile spec state after some prefix that extends the last fsync:
     the file system may persist more than was synced (background commits),
     but never less, and never a state that no prefix of the history
     produced. *)
  let allowed_recoveries ops =
    let states, _, _ = Model.run_trace step init ops in
    let last_fsync =
      let rec find i acc = function
        | [] -> acc
        | Fsync :: rest -> find (i + 1) (i + 1) rest
        | _ :: rest -> find (i + 1) acc rest
      in
      find 0 0 ops
    in
    List.filteri (fun i _ -> i >= last_fsync) states |> List.map (fun c -> c.volatile)

  let is_allowed_recovery ops recovered =
    List.exists (fun s -> equal s recovered) (allowed_recoveries ops)
end
