(* Refinement checking: the runtime analogue of functional verification.

   An implementation refines the spec when every operation, viewed through
   its interpretation function, is a valid transition of the abstract
   model.  [check_trace] validates a whole trace post-hoc; [Monitor] wraps
   a live implementation so that every single call is checked as it
   happens — this is what "the verified module" means at roadmap step 4 in
   our simulator. *)

module type FS_IMPL = sig
  type t

  val name : string
  val create : unit -> t
  val apply : t -> Fs_spec.op -> Fs_spec.result
  val interpret : t -> Fs_spec.state
end

type divergence = {
  step_index : int;
  op : Fs_spec.op;
  mismatch : mismatch;
}

and mismatch =
  | Result_mismatch of { expected : Fs_spec.result; got : Fs_spec.result }
  | State_mismatch of { expected : Fs_spec.state; got : Fs_spec.state }

let pp_divergence ppf d =
  match d.mismatch with
  | Result_mismatch { expected; got } ->
      Fmt.pf ppf "step %d (%a): result mismatch: spec %a, impl %a" d.step_index
        Fs_spec.pp_op d.op Fs_spec.pp_result expected Fs_spec.pp_result got
  | State_mismatch _ ->
      Fmt.pf ppf "step %d (%a): interpreted state diverges from spec state" d.step_index
        Fs_spec.pp_op d.op

exception Refinement_failure of divergence

let check_step ~step_index ~spec_state op ~impl_result ~impl_state =
  let spec_state', spec_result = Fs_spec.step spec_state op in
  if not (Fs_spec.equal_result spec_result impl_result) then
    Error { step_index; op; mismatch = Result_mismatch { expected = spec_result; got = impl_result } }
  else if not (Fs_spec.equal spec_state' impl_state) then
    Error { step_index; op; mismatch = State_mismatch { expected = spec_state'; got = impl_state } }
  else Ok spec_state'

let check_trace (type a) (module I : FS_IMPL with type t = a) ops =
  let impl = I.create () in
  let rec go i spec_state = function
    | [] -> Ok i
    | op :: rest -> (
        let impl_result = I.apply impl op in
        let impl_state = I.interpret impl in
        match check_step ~step_index:i ~spec_state op ~impl_result ~impl_state with
        | Ok spec_state' -> go (i + 1) spec_state' rest
        | Error d -> Error d)
  in
  go 0 Fs_spec.empty ops

(* A live refinement monitor: wraps an implementation so every call is
   checked against the spec as it happens. *)
module Monitor (I : FS_IMPL) : sig
  include FS_IMPL

  val checked_ops : t -> int
end = struct
  type t = {
    impl : I.t;
    mutable spec : Fs_spec.state;
    mutable steps : int;
  }

  let name = I.name ^ "+monitor"
  let create () = { impl = I.create (); spec = Fs_spec.empty; steps = 0 }

  let apply t op =
    let impl_result = I.apply t.impl op in
    let impl_state = I.interpret t.impl in
    (match
       check_step ~step_index:t.steps ~spec_state:t.spec op ~impl_result ~impl_state
     with
    | Ok spec' ->
        t.spec <- spec';
        t.steps <- t.steps + 1
    | Error d -> raise (Refinement_failure d));
    impl_result

  let interpret t = I.interpret t.impl
  let checked_ops t = t.steps
end
