(* Axiomatic models of unverified components, and the shim layers that
   bridge verified and unverified code.

   A verified module may rely on an unverified substrate (here: the block
   I/O layer) only through explicit assumptions.  Following the paper, the
   axioms abstract [buffer_head] away entirely and are "defined in terms of
   bytes": a block device is a map from block numbers to byte blocks, reads
   return the most recently written content, and flush is a durability
   barrier.  [shim] wraps any concrete implementation and checks each call
   against the axioms, recording a violation when the unverified side
   breaks an assumption — the "verified file system will appear buggy if
   either the block I/O layer is buggy or the model erroneous". *)

type block_ops = {
  nblocks : int;
  block_size : int;
  read : int -> bytes;
  write : int -> bytes -> unit;
  flush : unit -> unit;
}

type axiom_violation = {
  call : string;
  reason : string;
}

let pp_violation ppf v = Fmt.pf ppf "axiom violated in %s: %s" v.call v.reason

exception Axiom_violation of axiom_violation

type shim = {
  shim_ops : block_ops;
  shim_violations : axiom_violation list ref;
}

let violations shim = List.rev !(shim.shim_violations)
let ops shim = shim.shim_ops

let shim ?(strict = true) (underlying : block_ops) =
  (* The model: latest content written per block (bytes are copied so the
     unverified side cannot mutate the model's history behind our back). *)
  let model : (int, string) Hashtbl.t = Hashtbl.create 64 in
  let violations = ref [] in
  let report ~call reason =
    let v = { call; reason } in
    violations := v :: !violations;
    if strict then raise (Axiom_violation v)
  in
  let check_blkno ~call blkno =
    if blkno < 0 || blkno >= underlying.nblocks then
      report ~call (Printf.sprintf "block %d out of device range [0, %d)" blkno underlying.nblocks)
  in
  let read blkno =
    check_blkno ~call:"read" blkno;
    let data = underlying.read blkno in
    if Bytes.length data <> underlying.block_size then
      report ~call:"read"
        (Printf.sprintf "returned %d bytes, axiom requires block_size=%d" (Bytes.length data)
           underlying.block_size);
    (match Hashtbl.find_opt model blkno with
    | Some expected when not (String.equal expected (Bytes.to_string data)) ->
        report ~call:"read"
          (Printf.sprintf "block %d does not contain the most recently written bytes" blkno)
    | Some _ | None -> ());
    data
  in
  let write blkno data =
    check_blkno ~call:"write" blkno;
    if Bytes.length data <> underlying.block_size then
      report ~call:"write"
        (Printf.sprintf "wrote %d bytes, axiom requires block_size=%d" (Bytes.length data)
           underlying.block_size);
    underlying.write blkno data;
    Hashtbl.replace model blkno (Bytes.to_string data)
  in
  let flush () = underlying.flush () in
  { shim_ops = { underlying with read; write; flush }; shim_violations = violations }

(* A pure in-memory reference device satisfying the axioms by construction;
   used in tests as the "obviously correct" side of differential checks. *)
let reference ~nblocks ~block_size =
  let store = Array.init nblocks (fun _ -> Bytes.make block_size '\000') in
  {
    nblocks;
    block_size;
    read = (fun i -> Bytes.copy store.(i));
    write = (fun i data -> store.(i) <- Bytes.copy data);
    flush = (fun () -> ());
  }
