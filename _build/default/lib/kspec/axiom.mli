(** Axiomatic models of unverified components and boundary shims (§4.4).

    A verified module may rely on an unverified substrate only through
    explicit, minimal assumptions.  Here the block I/O axioms abstract
    [buffer_head] away and are "defined in terms of bytes": a device is a
    map from block numbers to blocks, reads return the most recently
    written bytes, writes are whole-block, and flush is a durability
    barrier.  {!shim} wraps a concrete implementation and checks every
    call against these axioms. *)

type block_ops = {
  nblocks : int;
  block_size : int;
  read : int -> bytes;
  write : int -> bytes -> unit;
  flush : unit -> unit;
}
(** The byte-level interface the axioms talk about.  Concrete devices
    ([Kblock.Blockdev]) expose themselves as a [block_ops]. *)

type axiom_violation = {
  call : string;  (** which operation broke an assumption *)
  reason : string;
}

val pp_violation : Format.formatter -> axiom_violation -> unit

exception Axiom_violation of axiom_violation

type shim

val shim : ?strict:bool -> block_ops -> shim
(** Wrap a device in an axiom-checking boundary.  With [strict] (default)
    a breach raises {!Axiom_violation}; otherwise breaches accumulate in
    {!violations}. *)

val violations : shim -> axiom_violation list

val ops : shim -> block_ops
(** The checked operations a verified client should call. *)

val reference : nblocks:int -> block_size:int -> block_ops
(** A pure in-memory device satisfying the axioms by construction. *)
