(* The interface modeling language.

   The paper asks for models expressed in "a mathematical language with
   immutable objects and functions and relations over them".  We encode
   that directly: abstract states are immutable OCaml values, operations
   are pure step functions, and specifications-with-nondeterminism are
   relations (predicates over before/after pairs).  Verification of an
   implementation is then refinement: each concrete operation, viewed
   through an interpretation function, must be a valid transition of the
   model (see [Refine]). *)

module type STATE = sig
  type t

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

(* Deterministic specification: a pure step function. *)
type ('st, 'op, 'res) step = 'st -> 'op -> 'st * 'res

(* Nondeterministic specification: which (state, op, state', result)
   quadruples are allowed. *)
type ('st, 'op, 'res) relation = 'st -> 'op -> 'st * 'res -> bool

let relation_of_step ~state_equal ~result_equal (step : _ step) : _ relation =
 fun st op (st', res') ->
  let expected_st, expected_res = step st op in
  state_equal expected_st st' && result_equal expected_res res'

(* Run a trace through a deterministic spec, collecting intermediate
   states; useful both for tests and to compute the set of spec states a
   crash may legally recover to. *)
let run_trace (step : _ step) init ops =
  let states, results, last =
    List.fold_left
      (fun (states, results, st) op ->
        let st', res = step st op in
        (st' :: states, res :: results, st'))
      ([ init ], [], init) ops
  in
  (List.rev states, List.rev results, last)

(* An interpretation ("abstraction function") maps implementation state to
   model state; refinement checks commute the square:

        impl --op--> impl'
         |            |
      interpret    interpret
         v            v
        model --op--> model'           *)
type ('impl, 'st) interpretation = 'impl -> 'st
