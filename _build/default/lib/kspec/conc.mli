(** Concurrent extension of sequential verification (§4.4).

    "Outsourcing a side-effect-free computation by passing a reference to
    an immutable data structure is a meta-logically safe extension of a
    sequential verification result."  {!outsource} executes that idea:
    pure jobs over one immutable abstract state, run under many seeded
    interleavings; determinism across schedules is checked, not assumed. *)

type 'a report = {
  distinct_outcomes : int;  (** 1 = schedule-insensitive *)
  schedules : int;
  canonical : 'a list option;  (** per-job results when deterministic *)
}

val outsource :
  ?seeds:int -> state:Fs_spec.state -> (Fs_spec.state -> 'a) list -> 'a report
(** Run every job concurrently over [state] under [seeds] (default 32)
    different schedules and tally distinct result vectors.  A job with a
    hidden side channel shows up as [distinct_outcomes > 1]. *)

val is_deterministic : 'a report -> bool

(** {1 Pure queries worth outsourcing} *)

val count_files : Fs_spec.state -> int
val count_dirs : Fs_spec.state -> int
val total_bytes : Fs_spec.state -> int
val max_depth : Fs_spec.state -> int
