(* Modular interface descriptors.

   "Modular components need interfaces that abstract component behavior";
   each later step "imposes different requirements on the interfaces".
   A descriptor names the interface, its operations, the minimum safety
   level its contract supports, and — for ownership-safe interfaces — the
   explicit sharing contract per operation. *)

type op_descr = {
  op_name : string;
  doc : string;
  sharing : Ownership.Contract.op option; (* required from Ownership_safe up *)
}

type t = {
  iface_name : string;
  version : int;
  supports : Level.t; (* highest roadmap step this interface can host *)
  ops : op_descr list;
}

let op ?(doc = "") ?sharing op_name = { op_name; doc; sharing }

let v ~name ~version ~supports ops = { iface_name = name; version; supports; ops }

let op_names iface = List.map (fun o -> o.op_name) iface.ops

let find_op iface name = List.find_opt (fun o -> String.equal o.op_name name) iface.ops

(* An implementation written against [required] can be hosted by an
   interface [provided] when the interface is the same family, not older,
   and offers every operation. *)
let compatible ~provided ~required =
  String.equal provided.iface_name required.iface_name
  && provided.version >= required.version
  && List.for_all (fun o -> find_op provided o.op_name <> None) required.ops

(* The requirements of §3's Summary: what an interface must provide before
   a module behind it can reach the given level. *)
let admits iface level =
  Level.( >= ) iface.supports level
  &&
  match level with
  | Level.Unsafe | Level.Modular | Level.Type_safe -> true
  | Level.Ownership_safe | Level.Verified ->
      (* Ownership contracts must be explicit on every operation. *)
      List.for_all (fun o -> o.sharing <> None) iface.ops

let pp_op ppf o =
  match o.sharing with
  | None -> Fmt.pf ppf "%s" o.op_name
  | Some sharing -> Fmt.pf ppf "%a" Ownership.Contract.pp_op sharing

let pp ppf iface =
  Fmt.pf ppf "@[<v2>interface %s v%d (supports %a):@ %a@]" iface.iface_name iface.version
    Level.pp iface.supports
    (Fmt.list ~sep:Fmt.cut pp_op)
    iface.ops

(* The file-system interface every mounted FS in this kernel implements,
   with its explicit sharing contract: paths and data move into the
   callee by value semantics (modelled as shared borrows of the caller's
   buffers), buffers for results are exclusive-borrowed. *)
let fs_interface =
  let borrow name = (name, Ownership.Contract.Borrow_shared) in
  let borrow_mut name = (name, Ownership.Contract.Borrow_exclusive) in
  let sharing name params = Ownership.Contract.op ~name params in
  v ~name:"fs_ops" ~version:1 ~supports:Level.Verified
    [
      op "create" ~doc:"create an empty regular file"
        ~sharing:(sharing "create" [ borrow "path" ]);
      op "mkdir" ~doc:"create an empty directory" ~sharing:(sharing "mkdir" [ borrow "path" ]);
      op "write" ~doc:"write bytes at an offset"
        ~sharing:(sharing "write" [ borrow "path"; borrow "data" ]);
      op "read" ~doc:"read bytes at an offset"
        ~sharing:(sharing "read" [ borrow "path"; borrow_mut "out" ]);
      op "truncate" ~doc:"set file size" ~sharing:(sharing "truncate" [ borrow "path" ]);
      op "unlink" ~doc:"remove a file" ~sharing:(sharing "unlink" [ borrow "path" ]);
      op "rmdir" ~doc:"remove an empty directory" ~sharing:(sharing "rmdir" [ borrow "path" ]);
      op "rename" ~doc:"move a file or directory subtree"
        ~sharing:(sharing "rename" [ borrow "src"; borrow "dst" ]);
      op "readdir" ~doc:"list a directory" ~sharing:(sharing "readdir" [ borrow "path" ]);
      op "stat" ~doc:"query kind and size" ~sharing:(sharing "stat" [ borrow "path" ]);
      op "fsync" ~doc:"make preceding operations durable" ~sharing:(sharing "fsync" []);
    ]
