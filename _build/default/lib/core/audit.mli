(** The Figure-1 audit: systems on the LoC-versus-safety plane, plus the
    kernel's own incremental progress from the live registry. *)

type row = {
  system : string;
  loc : int;
  level : Level.t;
  ours : bool;
}

val literature : row list
(** The landscape from the paper's Figure 1: Linux/FreeBSD (no
    guarantees), Singularity/Biscuit (type safety), Theseus/RedLeaf
    (ownership safety), seL4/Hyperkernel (functional verification). *)

val kernel_rows : Registry.t -> row list
val figure1 : Registry.t -> row list
val loc_band : int -> string
val render_figure1 : Format.formatter -> row list -> unit

type progress = {
  total_loc : int;
  at_or_above : (Level.t * int) list;
}

val progress : Registry.t -> progress
val render_progress : Format.formatter -> progress -> unit
