(** The incremental migration engine — §3 made executable.

    One component is replaced at a time; each replacement must be a
    safety upgrade, speak a compatible interface, and pass functional
    validation (a generated trace checked op-by-op against the abstract
    spec, results and interpreted states both) before the registry swaps
    implementations. *)

type divergence = {
  at_op : int;
  op : Kspec.Fs_spec.op;
  expected : Kspec.Fs_spec.result;
  got : Kspec.Fs_spec.result;
}

val pp_divergence : Format.formatter -> divergence -> unit

type validation = {
  trace_ops : int;
  checked : int;
  divergence : divergence option;
}

val validate :
  ?seed:int -> ?ops:int -> (unit -> Kvfs.Iface.instance) -> validation
(** Run a fresh candidate against the spec on a deterministic trace. *)

type step = {
  component : string;
  to_level : Level.t;
  iface : Interface.t;
  candidate : unit -> Kvfs.Iface.instance;
  loc : int;
  description : string;
}

type failure =
  | Not_an_upgrade of { current : Level.t; proposed : Level.t }
  | Interface_rejected of string
  | Validation_failed of divergence
  | Unknown_component

type outcome = {
  step : step;
  result : (Registry.entry * validation, failure) Stdlib.result;
}

val pp_failure : Format.formatter -> failure -> unit
val pp_outcome : Format.formatter -> outcome -> unit

val run_step : ?validation_ops:int -> Registry.t -> step -> outcome
val run_plan : ?validation_ops:int -> Registry.t -> step list -> outcome list
val succeeded : outcome -> bool

(** {1 §4.5 Rate of change: patches}

    A patch is a same-level replacement; it triggers revalidation of the
    patched component only — the executable form of "local changes to
    code require similarly local changes to proofs". *)

type patch = {
  patch_component : string;
  patch_description : string;
  replacement : unit -> Kvfs.Iface.instance;
}

type patch_outcome = {
  patch : patch;
  patch_result : (validation, failure) Stdlib.result;
}

val apply_patch : ?validation_ops:int -> Registry.t -> patch -> patch_outcome
val patch_succeeded : patch_outcome -> bool

val memfs_ladder : unit -> step list
(** The canonical three-step migration of "memfs": type-safe →
    ownership-safe → verified. *)
