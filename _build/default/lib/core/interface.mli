(** Modular interface descriptors (§3 Summary, §4.1).

    A descriptor names an interface, its operations, the highest roadmap
    level it can host, and — for ownership-safe interfaces — the explicit
    per-operation sharing contract the checker enforces. *)

type op_descr = {
  op_name : string;
  doc : string;
  sharing : Ownership.Contract.op option;
      (** explicit sharing contract; required from [Ownership_safe] up *)
}

type t = {
  iface_name : string;
  version : int;
  supports : Level.t;  (** highest roadmap step this interface can host *)
  ops : op_descr list;
}

val op : ?doc:string -> ?sharing:Ownership.Contract.op -> string -> op_descr
val v : name:string -> version:int -> supports:Level.t -> op_descr list -> t
val op_names : t -> string list
val find_op : t -> string -> op_descr option

val compatible : provided:t -> required:t -> bool
(** Same interface family, version not older, every required op offered. *)

val admits : t -> Level.t -> bool
(** Can a module behind this interface reach [level]?  Ownership-safe and
    verified modules additionally require explicit sharing contracts on
    every operation. *)

val pp_op : Format.formatter -> op_descr -> unit
val pp : Format.formatter -> t -> unit

val fs_interface : t
(** The file-system interface every mounted FS implements, with its
    explicit sharing contract. *)
