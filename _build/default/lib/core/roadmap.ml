(* The incremental migration engine: §3 made executable.

   One component is replaced at a time, and each replacement must (a) be
   a safety upgrade, (b) speak a compatible interface, and (c) pass
   functional validation — a generated trace whose every operation is
   checked against the abstract specification, results and interpreted
   states both.  Only then does the registry swap implementations.  This
   is "incremental benefit for incremental work": after each step the
   kernel runs with one more component at a higher rung. *)

type divergence = {
  at_op : int;
  op : Kspec.Fs_spec.op;
  expected : Kspec.Fs_spec.result;
  got : Kspec.Fs_spec.result;
}

let pp_divergence ppf d =
  Fmt.pf ppf "op %d (%a): spec %a, candidate %a" d.at_op Kspec.Fs_spec.pp_op d.op
    Kspec.Fs_spec.pp_result d.expected Kspec.Fs_spec.pp_result d.got

type validation = {
  trace_ops : int;
  checked : int;
  divergence : divergence option;
}

(* Validate a candidate against the specification on a deterministic
   generated trace: result equality on every op, state equality through
   the interpretation function after every op. *)
let validate ?(seed = 7) ?(ops = 400) candidate =
  let trace = Kfs.Workload.generate ~seed Kfs.Workload.Mixed ~ops in
  let instance = candidate () in
  let rec go i spec_state = function
    | [] -> { trace_ops = ops; checked = i; divergence = None }
    | op :: rest ->
        let got = Kvfs.Iface.instance_apply instance op in
        let spec_state', expected = Kspec.Fs_spec.step spec_state op in
        if not (Kspec.Fs_spec.equal_result expected got) then
          { trace_ops = ops; checked = i; divergence = Some { at_op = i; op; expected; got } }
        else if
          not (Kspec.Fs_spec.equal spec_state' (Kvfs.Iface.instance_interpret instance))
        then
          { trace_ops = ops; checked = i; divergence = Some { at_op = i; op; expected; got } }
        else go (i + 1) spec_state' rest
  in
  go 0 Kspec.Fs_spec.empty trace

type step = {
  component : string;
  to_level : Level.t;
  iface : Interface.t;
  candidate : unit -> Kvfs.Iface.instance;
  loc : int;
  description : string;
}

type failure =
  | Not_an_upgrade of { current : Level.t; proposed : Level.t }
  | Interface_rejected of string
  | Validation_failed of divergence
  | Unknown_component

type outcome = {
  step : step;
  result : (Registry.entry * validation, failure) Stdlib.result;
}

let pp_failure ppf = function
  | Not_an_upgrade { current; proposed } ->
      Fmt.pf ppf "not an upgrade: %a -> %a" Level.pp current Level.pp proposed
  | Interface_rejected why -> Fmt.pf ppf "interface rejected: %s" why
  | Validation_failed d -> Fmt.pf ppf "validation failed: %a" pp_divergence d
  | Unknown_component -> Fmt.string ppf "unknown component"

let run_step ?(validation_ops = 400) registry step =
  match Registry.find registry step.component with
  | None -> { step; result = Error Unknown_component }
  | Some current ->
      if Level.rank step.to_level <= Level.rank current.Registry.level then
        {
          step;
          result =
            Error (Not_an_upgrade { current = current.Registry.level; proposed = step.to_level });
        }
      else begin
        let validation = validate ~ops:validation_ops step.candidate in
        match validation.divergence with
        | Some d -> { step; result = Error (Validation_failed d) }
        | None -> (
            match
              Registry.replace registry ~name:step.component ~level:step.to_level
                ~iface:step.iface ~loc:step.loc ~description:step.description
                ~instance:(step.candidate ()) ()
            with
            | Ok entry -> { step; result = Ok (entry, validation) }
            | Error (`Incompatible_interface (a, b)) ->
                { step; result = Error (Interface_rejected (Fmt.str "%s vs %s" a b)) }
            | Error (`Would_lower_level _) ->
                {
                  step;
                  result =
                    Error
                      (Not_an_upgrade
                         { current = current.Registry.level; proposed = step.to_level });
                }
            | Error (`Interface_cannot_host level) ->
                {
                  step;
                  result =
                    Error
                      (Interface_rejected
                         (Fmt.str "interface cannot host %a" Level.pp level));
                })
      end

let run_plan ?validation_ops registry steps =
  List.map (fun step -> run_step ?validation_ops registry step) steps

let succeeded outcome = Result.is_ok outcome.result

let pp_outcome ppf outcome =
  match outcome.result with
  | Ok (entry, validation) ->
      Fmt.pf ppf "%-14s -> %-14s ok (%d ops validated)" outcome.step.component
        (Level.to_string entry.Registry.level)
        validation.checked
  | Error failure ->
      Fmt.pf ppf "%-14s -> %-14s FAILED: %a" outcome.step.component
        (Level.to_string outcome.step.to_level)
        pp_failure failure

(* §4.5 Rate of change: a patch is a same-level replacement of a
   component's implementation.  "Local changes to code require similarly
   local changes to proofs" — here, a patch triggers revalidation of the
   patched component only, and the cost is the validation trace, not a
   whole-kernel proof.  The ratchet still applies: a patch cannot lower
   the level, and a patch that diverges from the spec never lands. *)

type patch = {
  patch_component : string;
  patch_description : string;
  replacement : unit -> Kvfs.Iface.instance;
}

type patch_outcome = {
  patch : patch;
  patch_result : (validation, failure) Stdlib.result;
}

let apply_patch ?(validation_ops = 200) registry patch =
  match Registry.find registry patch.patch_component with
  | None -> { patch; patch_result = Error Unknown_component }
  | Some current -> (
      let validation = validate ~ops:validation_ops patch.replacement in
      match validation.divergence with
      | Some d -> { patch; patch_result = Error (Validation_failed d) }
      | None -> (
          match
            Registry.replace registry ~name:patch.patch_component
              ~level:current.Registry.level ~iface:current.Registry.iface
              ~description:patch.patch_description
              ~instance:(patch.replacement ()) ()
          with
          | Ok _ -> { patch; patch_result = Ok validation }
          | Error (`Incompatible_interface (a, b)) ->
              { patch; patch_result = Error (Interface_rejected (Fmt.str "%s vs %s" a b)) }
          | Error (`Would_lower_level (current_level, proposed)) ->
              {
                patch;
                patch_result =
                  Error (Not_an_upgrade { current = current_level; proposed });
              }
          | Error (`Interface_cannot_host level) ->
              {
                patch;
                patch_result =
                  Error (Interface_rejected (Fmt.str "cannot host %a" Level.pp level));
              }))

let patch_succeeded outcome = Result.is_ok outcome.patch_result

(* The canonical migration: memfs from unsafe all the way to verified. *)
let memfs_ladder () : step list =
  let candidate (module F : Kvfs.Iface.FS_OPS) () = Kvfs.Iface.make (module F) () in
  [
    {
      component = "memfs";
      to_level = Level.Type_safe;
      iface = Interface.fs_interface;
      candidate = candidate (module Kfs.Memfs_typed);
      loc = 210;
      description = "rewritten without void pointers or errptr casts";
    };
    {
      component = "memfs";
      to_level = Level.Ownership_safe;
      iface = Interface.fs_interface;
      candidate = candidate (module Kfs.Memfs_owned);
      loc = 240;
      description = "content in checked ownership regions";
    };
    {
      component = "memfs";
      to_level = Level.Verified;
      iface = Interface.fs_interface;
      candidate = candidate (module Kfs.Memfs_verified);
      loc = 230;
      description = "refinement-checked against Fs_spec";
    };
  ]
