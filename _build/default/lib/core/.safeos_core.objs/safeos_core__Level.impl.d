lib/core/level.ml: Fmt Stdlib
