lib/core/interface.mli: Format Level Ownership
