lib/core/registry.ml: Fmt Hashtbl Interface Kvfs Level List Option String
