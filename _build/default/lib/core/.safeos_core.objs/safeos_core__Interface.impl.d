lib/core/interface.ml: Fmt Level List Ownership String
