lib/core/audit.mli: Format Level Registry
