lib/core/registry.mli: Format Interface Kvfs Level Stdlib
