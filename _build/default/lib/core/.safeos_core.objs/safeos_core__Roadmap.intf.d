lib/core/roadmap.mli: Format Interface Kspec Kvfs Level Registry Stdlib
