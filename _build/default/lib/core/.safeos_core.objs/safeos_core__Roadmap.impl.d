lib/core/roadmap.ml: Fmt Interface Kfs Kspec Kvfs Level List Registry Result Stdlib
