lib/core/audit.ml: Fmt Level List Registry String
