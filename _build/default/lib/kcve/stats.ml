(* Derived statistics for Figure 2, computed from the record-level data. *)

let cves_per_year records =
  List.fold_left
    (fun acc (r : Dataset.cve) ->
      let n = try List.assoc r.year acc with Not_found -> 0 in
      (r.year, n + 1) :: List.remove_assoc r.year acc)
    [] records
  |> List.sort compare

(* Fig 2b: CDF of report lag (years after release). *)
type cdf_point = {
  lag_years : int;
  cumulative_fraction : float;
}

let report_lag_cdf ~release_year records =
  let lags = List.map (fun (r : Dataset.cve) -> r.year - release_year) records in
  let total = List.length lags in
  if total = 0 then []
  else
    let max_lag = List.fold_left max 0 lags in
    List.init (max_lag + 1) (fun lag ->
        let below = List.length (List.filter (fun l -> l <= lag) lags) in
        { lag_years = lag; cumulative_fraction = float_of_int below /. float_of_int total })

let median_lag ~release_year records =
  let lags =
    List.sort compare (List.map (fun (r : Dataset.cve) -> r.year - release_year) records)
  in
  match lags with
  | [] -> 0.
  | _ ->
      let n = List.length lags in
      if n mod 2 = 1 then float_of_int (List.nth lags (n / 2))
      else float_of_int (List.nth lags ((n / 2) - 1) + List.nth lags (n / 2)) /. 2.

(* Fig 2c: bugs per line of code per year, as a percentage. *)
type rate_point = {
  fs : string;
  age : int;
  bugs_per_loc_pct : float;
}

let bug_rate_series fs =
  List.map
    (fun (r : Dataset.fs_year) ->
      {
        fs = r.fs;
        age = r.age;
        bugs_per_loc_pct = 100.0 *. float_of_int r.bug_patches /. float_of_int r.loc;
      })
    (Dataset.history_of fs)

let final_rate fs =
  match List.rev (bug_rate_series fs) with [] -> 0. | last :: _ -> last.bugs_per_loc_pct

(* Headline numbers quoted in the paper's prose. *)
let recent_total ~since records =
  List.length (List.filter (fun (r : Dataset.cve) -> r.year >= since) records)

let fraction_at_or_after ~release_year ~lag records =
  let total = List.length records in
  let late =
    List.length (List.filter (fun (r : Dataset.cve) -> r.year - release_year >= lag) records)
  in
  if total = 0 then 0. else float_of_int late /. float_of_int total
