(** Record-level data behind Figure 2 — synthetic substitutes calibrated
    to the paper's published shapes (see DESIGN.md for the substitution
    argument).  All statistics are computed from these records by
    {!Stats}, never hard-coded. *)

type cve = {
  cve_id : string;
  year : int;
  component : string;
}

val linux_cves_per_year : (int * int) list
(** NVD-shaped per-year totals used to generate the records. *)

val all_linux_cves : unit -> cve list
(** One record per CVE, 1999–2020 (deterministic; memoized). *)

val ext4_release_year : int

val ext4_report_lags : int list
(** Years between ext4's release and each CVE report; median is 7
    ("50% of CVEs in ext4 were found after 7 years or more of use"). *)

val all_ext4_cves : unit -> cve list

type fs_year = {
  fs : string;
  release_year : int;
  age : int;  (** years since the file system's initial release *)
  bug_patches : int;
  loc : int;
}

val fs_bug_history : fs_year list
(** Per-age bug patches and code size for overlayfs, ext4, btrfs. *)

val fs_names : string list
val history_of : string -> fs_year list
