(** ASCII rendering of every figure and table in the paper's evaluation:
    Figure 1 (safety-vs-LoC landscape + this kernel's progress),
    Figure 2a/2b/2c (CVE history, ext4 report-lag CDF, bugs-per-LoC
    decay), the §2 CWE table, and the fault-injection matrix. *)

val fig1 : Format.formatter -> Safeos_core.Registry.t -> unit
val fig2a : Format.formatter -> unit -> unit
val fig2b : Format.formatter -> unit -> unit
val fig2c : Format.formatter -> unit -> unit
val cwe_table : Format.formatter -> unit -> unit
val injection_matrix : Format.formatter -> unit -> unit

val all : Format.formatter -> Safeos_core.Registry.t -> unit
(** Every figure and table, in paper order. *)
