(* Record-level data behind Figure 2.

   The paper measured the public CVE database and Linux bug-fix patches;
   neither ships here, so the datasets below are synthetic record-level
   substitutes calibrated to the published shapes:

   - Fig 2a: new Linux kernel CVEs per year keep coming by the hundreds,
     with the well-known 2017 spike (per-year totals follow the NVD
     "linux kernel" counts).
   - Fig 2b: ext4 shipped in 2008, yet 50% of its CVEs were reported 7+
     years after release (the lag distribution below has its median at
     exactly 7 years).
   - Fig 2c: overlayfs/ext4/btrfs keep producing ~0.5 new bugs per 100
     LoC-year even a decade in (rates decay from ~1.5-2.5% toward 0.5%).

   All derived statistics in [Stats] are computed from these records, not
   hard-coded, so the figures regenerate the paper's shapes the same way
   the authors' scripts regenerated them from the real corpus. *)

type cve = {
  cve_id : string;
  year : int;
  component : string;
}

(* NVD-shaped per-year counts for "linux kernel" CVEs. *)
let linux_cves_per_year =
  [
    (1999, 19); (2000, 5); (2001, 22); (2002, 20); (2003, 19); (2004, 51); (2005, 133);
    (2006, 90); (2007, 62); (2008, 71); (2009, 102); (2010, 123); (2011, 83); (2012, 115);
    (2013, 189); (2014, 133); (2015, 77); (2016, 217); (2017, 453); (2018, 177);
    (2019, 287); (2020, 126);
  ]

let components = [| "fs"; "net"; "drivers"; "mm"; "core"; "sound"; "crypto" |]

let linux_cves =
  lazy
    (let rng = Ksim.Rng.of_int 1991 in
     List.concat_map
       (fun (year, count) ->
         List.init count (fun i ->
             {
               cve_id = Printf.sprintf "CVE-%d-%04d" year (1000 + i);
               year;
               component = components.(Ksim.Rng.int rng (Array.length components));
             }))
       linux_cves_per_year)

let all_linux_cves () = Lazy.force linux_cves

(* ext4: stable since 2008.  Report lags in years after release; the
   median of this multiset is 7, matching "50% of CVEs in ext4 were found
   after 7 years or more of use". *)
let ext4_release_year = 2008

let ext4_report_lags =
  [ 0; 1; 1; 2; 2; 3; 3; 4; 4; 5; 5; 6; 6; 7; 7; 7; 8; 8; 9; 9; 10; 10; 11; 11; 12; 12; 12; 13 ]

let ext4_cves =
  lazy
    (List.mapi
       (fun i lag ->
         {
           cve_id = Printf.sprintf "CVE-%d-%04d" (ext4_release_year + lag) (4000 + i);
           year = ext4_release_year + lag;
           component = "fs/ext4";
         })
       ext4_report_lags)

let all_ext4_cves () = Lazy.force ext4_cves

(* Fig 2c: per-year bug patches and code size per file system.  Years are
   offsets from each FS's initial release; LoC grows, patch counts stay
   roughly proportional — the bugs-per-LoC rate decays towards ~0.5%/yr
   and stays there. *)
type fs_year = {
  fs : string;
  release_year : int;
  age : int; (* years since initial release *)
  bug_patches : int;
  loc : int;
}

let fs_bug_history =
  let series fs release_year rows =
    List.mapi (fun age (bug_patches, loc) -> { fs; release_year; age; bug_patches; loc }) rows
  in
  (* (bug patches, LoC) per year of age. *)
  series "ext4" 2008
    [ (620, 25_000); (410, 27_000); (350, 29_000); (300, 31_000); (260, 33_000);
      (240, 35_000); (230, 37_000); (220, 39_000); (215, 41_000); (210, 43_000);
      (225, 45_000); (235, 47_000) ]
  @ series "btrfs" 2009
      [ (2_600, 65_000); (1_900, 75_000); (1_500, 85_000); (1_200, 95_000);
        (1_000, 105_000); (900, 115_000); (800, 125_000); (720, 130_000); (680, 135_000);
        (700, 140_000); (705, 142_000) ]
  @ series "overlayfs" 2014
      [ (150, 6_000); (120, 7_500); (90, 8_500); (70, 9_000); (60, 9_500); (55, 10_000);
        (50, 10_500) ]

let fs_names = [ "overlayfs"; "ext4"; "btrfs" ]

let history_of fs = List.filter (fun r -> String.equal r.fs fs) fs_bug_history
