(* ASCII rendering of every figure and table in the paper.

   Each [fig*] function prints the same rows/series the paper plots, from
   the record-level data, so `safeos figures` (and the bench harness)
   regenerate the evaluation artifacts end to end. *)

let bar width value max_value =
  let n =
    if max_value <= 0 then 0
    else int_of_float (float_of_int width *. float_of_int value /. float_of_int max_value)
  in
  String.make (max n 0) '#'

let fig2a ppf () =
  let series = Stats.cves_per_year (Dataset.all_linux_cves ()) in
  let max_count = List.fold_left (fun m (_, c) -> max m c) 0 series in
  Fmt.pf ppf "Figure 2a: new Linux CVEs reported each year@.";
  List.iter
    (fun (year, count) -> Fmt.pf ppf "  %d %4d %s@." year count (bar 46 count max_count))
    series;
  Fmt.pf ppf "  total: %d CVEs, %d since 2010@."
    (List.length (Dataset.all_linux_cves ()))
    (Stats.recent_total ~since:2010 (Dataset.all_linux_cves ()))

let fig2b ppf () =
  let records = Dataset.all_ext4_cves () in
  let cdf = Stats.report_lag_cdf ~release_year:Dataset.ext4_release_year records in
  Fmt.pf ppf "Figure 2b: CDF of ext4 CVE report lag after initial release (%d)@."
    Dataset.ext4_release_year;
  List.iter
    (fun (p : Stats.cdf_point) ->
      Fmt.pf ppf "  %2d yr  %5.1f%%  %s@." p.lag_years (100. *. p.cumulative_fraction)
        (bar 40 (int_of_float (100. *. p.cumulative_fraction)) 100))
    cdf;
  Fmt.pf ppf "  median report lag: %.1f years; %.0f%% of CVEs 7+ years after release@."
    (Stats.median_lag ~release_year:Dataset.ext4_release_year records)
    (100. *. Stats.fraction_at_or_after ~release_year:Dataset.ext4_release_year ~lag:7 records)

let fig2c ppf () =
  Fmt.pf ppf "Figure 2c: new bugs per line of code per year (percent)@.";
  List.iter
    (fun fs ->
      Fmt.pf ppf "  %s:@." fs;
      List.iter
        (fun (p : Stats.rate_point) ->
          Fmt.pf ppf "    year %2d  %5.2f%%  %s@." p.age p.bugs_per_loc_pct
            (bar 32 (int_of_float (p.bugs_per_loc_pct *. 10.)) 45))
        (Stats.bug_rate_series fs);
      Fmt.pf ppf "    -> latest rate %.2f%% per LoC-year@." (Stats.final_rate fs))
    Dataset.fs_names

let cwe_table ppf () =
  let records = Kbugs.Corpus.records () in
  let tally = Kbugs.Analysis.categorize records in
  Kbugs.Analysis.render_tally ppf tally;
  Fmt.pf ppf "@.";
  Kbugs.Analysis.render_by_cwe ppf records

let injection_matrix ppf () =
  Fmt.pf ppf "Fault-injection matrix (EXP-PREVENT): roadmap stage vs. injected bug@.";
  Kbugs.Inject.render_matrix ppf (Kbugs.Inject.matrix ())

let fig1 ppf registry =
  Safeos_core.Audit.render_figure1 ppf (Safeos_core.Audit.figure1 registry);
  Fmt.pf ppf "@.";
  Safeos_core.Audit.render_progress ppf (Safeos_core.Audit.progress registry)

let all ppf registry =
  fig1 ppf registry;
  Fmt.pf ppf "@.";
  fig2a ppf ();
  Fmt.pf ppf "@.";
  fig2b ppf ();
  Fmt.pf ppf "@.";
  fig2c ppf ();
  Fmt.pf ppf "@.";
  cwe_table ppf ();
  Fmt.pf ppf "@.";
  injection_matrix ppf ()
