(** Statistics for Figure 2, derived from {!Dataset} records. *)

val cves_per_year : Dataset.cve list -> (int * int) list
(** Figure 2a's series. *)

type cdf_point = {
  lag_years : int;
  cumulative_fraction : float;
}

val report_lag_cdf : release_year:int -> Dataset.cve list -> cdf_point list
(** Figure 2b's series: CDF of (report year − release year). *)

val median_lag : release_year:int -> Dataset.cve list -> float

type rate_point = {
  fs : string;
  age : int;
  bugs_per_loc_pct : float;
}

val bug_rate_series : string -> rate_point list
(** Figure 2c's series for one file system (percent bugs/LoC/year). *)

val final_rate : string -> float
(** The latest bugs/LoC rate — the paper's ~0.5% tail. *)

val recent_total : since:int -> Dataset.cve list -> int

val fraction_at_or_after :
  release_year:int -> lag:int -> Dataset.cve list -> float
(** Fraction of CVEs reported [lag] or more years after release. *)
