lib/kcve/dataset.ml: Array Ksim Lazy List Printf String
