lib/kcve/stats.mli: Dataset
