lib/kcve/figures.mli: Format Safeos_core
