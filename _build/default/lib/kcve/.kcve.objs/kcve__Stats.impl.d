lib/kcve/stats.ml: Dataset List
