lib/kcve/dataset.mli:
