lib/kcve/figures.ml: Dataset Fmt Kbugs List Safeos_core Stats String
