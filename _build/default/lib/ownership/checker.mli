(** Runtime ownership checker: restricted and explicit ownership sharing.

    Executable form of the paper's three interface models (§4.3) for
    passing memory across module boundaries without copying:

    - {b model 1} ({!transfer}): ownership moves; the caller's capability is
      revoked forever; the receiver must free.
    - {b model 2} ({!lend_exclusive}): the callee may read and write for the
      duration of the call; the caller's rights are suspended; the callee
      cannot free and loses access when the call returns.
    - {b model 3} ({!lend_shared}): caller, callee, and any other named
      readers may read for the duration of the call; nobody may write.

    Memory is shared (no payload copies).  Every access presents a
    {!Cap.t}; breaches are recorded as {!violation}s (and raised in strict
    mode).  {!Message} is the copying baseline these models are compared
    against in bench [ownership/*]. *)

type violation_kind =
  | Use_after_free
  | Double_free
  | Write_while_shared
  | Write_without_rights
  | Read_with_revoked_cap
  | Free_without_ownership
  | Free_while_lent
  | Out_of_bounds
  | Leak

val violation_kind_to_string : violation_kind -> string

type violation = {
  kind : violation_kind;
  region : int;
  culprit : string;  (** holder string of the offending capability *)
  detail : string;
}

exception Violation of violation
(** Raised on any breach when the checker is strict. *)

val pp_violation : Format.formatter -> violation -> unit

type t

val create : ?strict:bool -> ?trace:Ksim.Ktrace.t -> unit -> t
(** [strict] (default [true]): raise {!Violation} on breach; otherwise only
    record, modelling latent bugs. *)

val alloc : t -> holder:string -> size:int -> Cap.t
(** Allocate a region of [size] bytes; returns the owner capability. *)

val size : t -> Cap.t -> int

val read : t -> Cap.t -> off:int -> len:int -> bytes
val write : t -> Cap.t -> off:int -> bytes -> unit
val fill : t -> Cap.t -> char -> unit

val transfer : t -> Cap.t -> to_:string -> Cap.t
(** Model 1.  Revokes the argument capability; returns the new owner's. *)

val lend_exclusive : t -> Cap.t -> to_:string -> f:(Cap.t -> 'a) -> 'a
(** Model 2.  Runs [f] with a read/write borrow; the owner's rights are
    suspended during the call and restored after, even on exception. *)

val lend_shared : t -> Cap.t -> to_:string list -> f:(Cap.t list -> 'a) -> 'a
(** Model 3.  Runs [f] with one read-only borrow per name in [to_]; the
    owner may also read during the call; all writes are violations. *)

val free : t -> Cap.t -> unit
(** Requires an owning capability on a region not currently lent. *)

val violations : t -> violation list
val violation_count : t -> int

val live_regions : t -> int list
(** Regions not yet freed, ascending. *)

val check_leaks : t -> bool
(** Record a [Leak] violation for each live region; true when none. *)
