(* Capability tokens.

   A capability is the runtime witness of a right to access a memory
   region.  Ownership-safe interfaces (roadmap step 3) pass capabilities
   instead of raw pointers; the checker validates every access against the
   region's current sharing state. *)

type mode =
  | Owner
  | Exclusive_borrow
  | Shared_borrow

let mode_to_string = function
  | Owner -> "owner"
  | Exclusive_borrow -> "excl-borrow"
  | Shared_borrow -> "shared-borrow"

type t = {
  cap_id : int;
  region_id : int;
  mode : mode;
  holder : string;
  mutable revoked : bool;
}

let next_id = ref 0

let make ~region_id ~mode ~holder =
  incr next_id;
  { cap_id = !next_id; region_id; mode; holder; revoked = false }

let revoke cap = cap.revoked <- true
let restore cap = cap.revoked <- false
let is_valid cap = not cap.revoked

let can_write cap =
  is_valid cap && (match cap.mode with Owner | Exclusive_borrow -> true | Shared_borrow -> false)

let can_free cap = is_valid cap && cap.mode = Owner

let pp ppf cap =
  Fmt.pf ppf "cap#%d(%s of r%d held by %s%s)" cap.cap_id (mode_to_string cap.mode)
    cap.region_id cap.holder
    (if cap.revoked then ", revoked" else "")
