(* Explicit ownership contracts on interfaces.

   The paper requires ownership contracts to be "made explicit in some way
   that the checker can understand and validate".  A [Contract.t] declares,
   per operation and per parameter, which sharing model applies; [apply]
   then mediates a call through the checker so the declared contract is the
   enforced one. *)

type param_mode =
  | Move  (** model 1: ownership transfers to the callee *)
  | Borrow_exclusive  (** model 2 *)
  | Borrow_shared  (** model 3 *)

let param_mode_to_string = function
  | Move -> "move"
  | Borrow_exclusive -> "&mut"
  | Borrow_shared -> "&"

type param = {
  param_name : string;
  mode : param_mode;
}

type op = {
  op_name : string;
  params : param list;
}

type t = {
  interface : string;
  ops : op list;
}

let v ~interface ops = { interface; ops }

let op ~name params =
  { op_name = name; params = List.map (fun (param_name, mode) -> { param_name; mode }) params }

let find_op contract name = List.find_opt (fun o -> String.equal o.op_name name) contract.ops

exception Unknown_op of { interface : string; op : string }
exception Arity_mismatch of { op : string; expected : int; got : int }

(* Mediate a call through the checker.  [args] pairs each capability with
   the callee's view is built according to the declared mode; [f] receives
   the callee-side capabilities in parameter order. *)
let apply checker contract ~op:op_name ~callee ~args ~f =
  let op =
    match find_op contract op_name with
    | Some o -> o
    | None -> raise (Unknown_op { interface = contract.interface; op = op_name })
  in
  let expected = List.length op.params and got = List.length args in
  if expected <> got then raise (Arity_mismatch { op = op_name; expected; got });
  (* Thread the lends: wrap [f] in nested scopes, one per borrowed
     parameter, so all borrows end when the call returns.  Moves happen
     up-front and are permanent. *)
  let rec go params args acc =
    match (params, args) with
    | [], [] -> f (List.rev acc)
    | param :: params, cap :: args -> (
        match param.mode with
        | Move ->
            let moved = Checker.transfer checker cap ~to_:callee in
            go params args (moved :: acc)
        | Borrow_exclusive ->
            Checker.lend_exclusive checker cap ~to_:callee ~f:(fun borrowed ->
                go params args (borrowed :: acc))
        | Borrow_shared ->
            Checker.lend_shared checker cap ~to_:[ callee ] ~f:(fun borrowed ->
                match borrowed with
                | [ b ] -> go params args (b :: acc)
                | _ -> assert false))
    | _ -> assert false (* arity checked above *)
  in
  go op.params args []

let pp_op ppf o =
  let pp_param ppf p = Fmt.pf ppf "%s: %s" p.param_name (param_mode_to_string p.mode) in
  Fmt.pf ppf "%s(%a)" o.op_name (Fmt.list ~sep:(Fmt.any ", ") pp_param) o.params

let pp ppf contract =
  Fmt.pf ppf "@[<v2>interface %s:@ %a@]" contract.interface
    (Fmt.list ~sep:Fmt.cut pp_op) contract.ops
