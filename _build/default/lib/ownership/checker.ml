(* The ownership checker: restricted and explicit ownership sharing.

   Implements the paper's three interface models for passing memory across
   a module boundary without copies (section 4.3):

     model 1 (transfer)        — ownership moves; the caller's capability is
                                 revoked forever and the callee must free.
     model 2 (exclusive lend)  — the callee gets read/write access for the
                                 duration of the call; the caller's rights
                                 are suspended; the callee cannot free and
                                 loses access when the call returns.
     model 3 (shared lend)     — caller, callee and others may read for the
                                 duration of the call; nobody may write.

   All three share memory (no payload copies) and are checked dynamically:
   every access presents a capability, and the checker validates it against
   the region's sharing state, recording a violation (or raising, in strict
   mode) on any breach.  [Message] provides the copying baseline the paper
   contrasts these models with. *)

type violation_kind =
  | Use_after_free
  | Double_free
  | Write_while_shared
  | Write_without_rights
  | Read_with_revoked_cap
  | Free_without_ownership
  | Free_while_lent
  | Out_of_bounds
  | Leak

let violation_kind_to_string = function
  | Use_after_free -> "use-after-free"
  | Double_free -> "double-free"
  | Write_while_shared -> "write-while-shared"
  | Write_without_rights -> "write-without-rights"
  | Read_with_revoked_cap -> "read-with-revoked-cap"
  | Free_without_ownership -> "free-without-ownership"
  | Free_while_lent -> "free-while-lent"
  | Out_of_bounds -> "out-of-bounds"
  | Leak -> "leak"

type violation = {
  kind : violation_kind;
  region : int;
  culprit : string;
  detail : string;
}

exception Violation of violation

let pp_violation ppf v =
  Fmt.pf ppf "%s on r%d by %s: %s" (violation_kind_to_string v.kind) v.region v.culprit
    v.detail

type rstate =
  | Owned of Cap.t
  | Lent_exclusive of { owner : Cap.t; borrower : Cap.t }
  | Lent_shared of { owner : Cap.t; readers : Cap.t list }
  | Freed

type region = {
  rid : int;
  data : bytes;
  site : string;
  mutable state : rstate;
}

type t = {
  regions : (int, region) Hashtbl.t;
  mutable next_rid : int;
  mutable violations : violation list;
  strict : bool;
  trace : Ksim.Ktrace.t;
}

let create ?(strict = true) ?(trace = Ksim.Ktrace.global) () =
  { regions = Hashtbl.create 64; next_rid = 0; violations = []; strict; trace }

let report ck ~kind ~region ~culprit detail =
  let v = { kind; region; culprit; detail } in
  ck.violations <- v :: ck.violations;
  Ksim.Ktrace.emitf ck.trace ~category:"ownership" "%a" pp_violation v;
  if ck.strict then raise (Violation v)

let violations ck = List.rev ck.violations
let violation_count ck = List.length ck.violations

let region_exn ck rid =
  match Hashtbl.find_opt ck.regions rid with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Checker: unknown region %d" rid)

let alloc ck ~holder ~size =
  ck.next_rid <- ck.next_rid + 1;
  let rid = ck.next_rid in
  let cap = Cap.make ~region_id:rid ~mode:Owner ~holder in
  let r = { rid; data = Bytes.create size; site = holder; state = Owned cap } in
  Hashtbl.replace ck.regions rid r;
  cap

let size ck (cap : Cap.t) = Bytes.length (region_exn ck cap.region_id).data

(* Access validation -------------------------------------------------- *)

let cap_may_read r (cap : Cap.t) =
  match r.state with
  | Freed -> false
  | Owned owner -> Cap.is_valid cap && cap.cap_id = owner.cap_id
  | Lent_exclusive { borrower; _ } -> Cap.is_valid cap && cap.cap_id = borrower.cap_id
  | Lent_shared { owner; readers } ->
      Cap.is_valid cap
      && (cap.cap_id = owner.cap_id
         || List.exists (fun (c : Cap.t) -> c.cap_id = cap.cap_id) readers)

let cap_may_write r (cap : Cap.t) =
  match r.state with
  | Freed -> false
  | Owned owner -> Cap.is_valid cap && cap.cap_id = owner.cap_id
  | Lent_exclusive { borrower; _ } -> Cap.is_valid cap && cap.cap_id = borrower.cap_id
  | Lent_shared _ -> false

let check_bounds ck r ~culprit ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length r.data then begin
    report ck ~kind:Out_of_bounds ~region:r.rid ~culprit
      (Printf.sprintf "range [%d, %d) beyond size %d" off (off + len)
         (Bytes.length r.data));
    false
  end
  else true

let read ck (cap : Cap.t) ~off ~len =
  let r = region_exn ck cap.region_id in
  (match r.state with
  | Freed -> report ck ~kind:Use_after_free ~region:r.rid ~culprit:cap.holder "read of freed region"
  | _ when cap_may_read r cap -> ()
  | _ ->
      report ck ~kind:Read_with_revoked_cap ~region:r.rid ~culprit:cap.holder
        (Fmt.str "read with %a while region is otherwise shared" Cap.pp cap));
  if check_bounds ck r ~culprit:cap.holder ~off ~len then Bytes.sub r.data off len
  else Bytes.create 0

let write ck (cap : Cap.t) ~off src =
  let r = region_exn ck cap.region_id in
  (match r.state with
  | Freed ->
      report ck ~kind:Use_after_free ~region:r.rid ~culprit:cap.holder "write to freed region"
  | Lent_shared _ ->
      report ck ~kind:Write_while_shared ~region:r.rid ~culprit:cap.holder
        (Fmt.str "write with %a during shared lend" Cap.pp cap)
  | _ when cap_may_write r cap -> ()
  | _ ->
      report ck ~kind:Write_without_rights ~region:r.rid ~culprit:cap.holder
        (Fmt.str "write with %a" Cap.pp cap));
  let len = Bytes.length src in
  if check_bounds ck r ~culprit:cap.holder ~off ~len then Bytes.blit src 0 r.data off len

let fill ck (cap : Cap.t) byte =
  let r = region_exn ck cap.region_id in
  write ck cap ~off:0 (Bytes.make (Bytes.length r.data) byte)

(* Model 1: ownership transfer ---------------------------------------- *)

let transfer ck (cap : Cap.t) ~to_ =
  let r = region_exn ck cap.region_id in
  (match r.state with
  | Owned owner when Cap.is_valid cap && cap.cap_id = owner.cap_id -> ()
  | Freed -> report ck ~kind:Use_after_free ~region:r.rid ~culprit:cap.holder "transfer of freed region"
  | _ ->
      report ck ~kind:Free_without_ownership ~region:r.rid ~culprit:cap.holder
        (Fmt.str "transfer with non-owning %a" Cap.pp cap));
  Cap.revoke cap;
  let fresh = Cap.make ~region_id:r.rid ~mode:Cap.Owner ~holder:to_ in
  (match r.state with Freed -> () | _ -> r.state <- Owned fresh);
  fresh

(* Model 2: exclusive lend --------------------------------------------- *)

let lend_exclusive ck (cap : Cap.t) ~to_ ~f =
  let r = region_exn ck cap.region_id in
  (match r.state with
  | Owned owner when Cap.is_valid cap && cap.cap_id = owner.cap_id -> ()
  | _ ->
      report ck ~kind:Write_without_rights ~region:r.rid ~culprit:cap.holder
        (Fmt.str "exclusive lend with %a" Cap.pp cap));
  let borrower = Cap.make ~region_id:r.rid ~mode:Cap.Exclusive_borrow ~holder:to_ in
  let saved = r.state in
  Cap.revoke cap;
  r.state <- Lent_exclusive { owner = cap; borrower };
  let restore () =
    Cap.revoke borrower;
    Cap.restore cap;
    r.state <- (match saved with Owned _ -> Owned cap | other -> other)
  in
  match f borrower with
  | result ->
      restore ();
      result
  | exception exn ->
      restore ();
      raise exn

(* Model 3: shared lend ------------------------------------------------ *)

let lend_shared ck (cap : Cap.t) ~to_ ~f =
  let r = region_exn ck cap.region_id in
  (match r.state with
  | Owned owner when Cap.is_valid cap && cap.cap_id = owner.cap_id -> ()
  | _ ->
      report ck ~kind:Write_without_rights ~region:r.rid ~culprit:cap.holder
        (Fmt.str "shared lend with %a" Cap.pp cap));
  let readers =
    List.map (fun holder -> Cap.make ~region_id:r.rid ~mode:Cap.Shared_borrow ~holder) to_
  in
  let saved = r.state in
  r.state <- Lent_shared { owner = cap; readers };
  let restore () =
    List.iter Cap.revoke readers;
    r.state <- (match saved with Owned _ -> Owned cap | other -> other)
  in
  match f readers with
  | result ->
      restore ();
      result
  | exception exn ->
      restore ();
      raise exn

(* Free + leak accounting ---------------------------------------------- *)

let free ck (cap : Cap.t) =
  let r = region_exn ck cap.region_id in
  match r.state with
  | Freed -> report ck ~kind:Double_free ~region:r.rid ~culprit:cap.holder "double free"
  | Lent_exclusive _ | Lent_shared _ ->
      report ck ~kind:Free_while_lent ~region:r.rid ~culprit:cap.holder
        "free while region is lent out"
  | Owned owner ->
      if Cap.is_valid cap && cap.cap_id = owner.cap_id then begin
        Cap.revoke cap;
        r.state <- Freed
      end
      else
        report ck ~kind:Free_without_ownership ~region:r.rid ~culprit:cap.holder
          (Fmt.str "free with %a" Cap.pp cap)

let live_regions ck =
  Hashtbl.fold (fun _ r acc -> match r.state with Freed -> acc | _ -> r.rid :: acc) ck.regions []
  |> List.sort compare

let check_leaks ck =
  let live = live_regions ck in
  List.iter
    (fun rid ->
      let r = region_exn ck rid in
      report ck ~kind:Leak ~region:rid ~culprit:r.site "region never freed")
    live;
  live = []
