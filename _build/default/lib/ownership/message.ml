(* Copying message-passing channel: the strict-isolation baseline.

   Microkernel-style interfaces copy payloads across the boundary.  The
   paper's three sharing models are "semantically equivalent to message
   passing but share memory for performance"; this module is the
   semantically equivalent copying implementation used as the baseline in
   bench [ownership/*]. *)

type t = {
  queue : bytes Queue.t;
  mutable sent : int;
  mutable received : int;
  mutable bytes_copied : int;
}

let create () = { queue = Queue.create (); sent = 0; received = 0; bytes_copied = 0 }

let send ch payload =
  (* The copy is the point: the sender retains its buffer, the receiver
     gets an isolated one. *)
  let copy = Bytes.copy payload in
  Queue.push copy ch.queue;
  ch.sent <- ch.sent + 1;
  ch.bytes_copied <- ch.bytes_copied + Bytes.length payload

let recv ch =
  match Queue.take_opt ch.queue with
  | None -> None
  | Some payload ->
      ch.received <- ch.received + 1;
      Some payload

let call ch payload ~f =
  send ch payload;
  match recv ch with
  | None -> assert false (* we just sent *)
  | Some received ->
      let reply = f received in
      let reply_copy = Bytes.copy reply in
      ch.bytes_copied <- ch.bytes_copied + Bytes.length reply;
      reply_copy

let pending ch = Queue.length ch.queue
let sent ch = ch.sent
let received ch = ch.received
let bytes_copied ch = ch.bytes_copied
