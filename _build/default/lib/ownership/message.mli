(** Copying message-passing channel — the strict-isolation baseline.

    The paper's three sharing models are "semantically equivalent to
    message-passing interfaces but share memory for performance"; this is
    the copying implementation they are benchmarked against. *)

type t

val create : unit -> t

val send : t -> bytes -> unit
(** Enqueue a {e copy} of the payload; the sender keeps its buffer. *)

val recv : t -> bytes option

val call : t -> bytes -> f:(bytes -> bytes) -> bytes
(** One round-trip: send a copy, let the callee compute a reply, copy the
    reply back.  Two payload copies — the cost the sharing models avoid. *)

val pending : t -> int
val sent : t -> int
val received : t -> int

val bytes_copied : t -> int
(** Total payload bytes copied so far (both directions). *)
