lib/ownership/cap.ml: Fmt
