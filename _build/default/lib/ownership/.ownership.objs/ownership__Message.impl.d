lib/ownership/message.ml: Bytes Queue
