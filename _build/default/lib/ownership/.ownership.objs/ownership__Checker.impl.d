lib/ownership/checker.ml: Bytes Cap Fmt Hashtbl Ksim List Printf
