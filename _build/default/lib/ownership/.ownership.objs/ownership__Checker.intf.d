lib/ownership/checker.mli: Cap Format Ksim
