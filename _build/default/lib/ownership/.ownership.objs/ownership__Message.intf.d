lib/ownership/message.mli:
