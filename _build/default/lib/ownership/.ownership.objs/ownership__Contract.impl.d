lib/ownership/contract.ml: Checker Fmt List String
