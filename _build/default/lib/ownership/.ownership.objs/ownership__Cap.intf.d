lib/ownership/cap.mli: Format
