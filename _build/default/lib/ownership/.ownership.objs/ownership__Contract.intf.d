lib/ownership/contract.mli: Cap Checker Format
