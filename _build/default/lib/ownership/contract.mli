(** Explicit ownership contracts on module interfaces.

    The paper requires ownership contracts to be "made explicit in some way
    that the checker can understand and validate" (§4.3).  A contract
    declares, per operation and parameter, which of the three sharing
    models applies; {!apply} mediates a real call through {!Checker} so
    the declared contract is the enforced one. *)

type param_mode =
  | Move  (** model 1: ownership transfers to the callee *)
  | Borrow_exclusive  (** model 2: read/write for the call's duration *)
  | Borrow_shared  (** model 3: read-only for the call's duration *)

val param_mode_to_string : param_mode -> string
(** Rust-flavoured rendering: ["move"], ["&mut"], ["&"]. *)

type param = private {
  param_name : string;
  mode : param_mode;
}

type op = private {
  op_name : string;
  params : param list;
}

type t = private {
  interface : string;
  ops : op list;
}

val v : interface:string -> op list -> t
val op : name:string -> (string * param_mode) list -> op
val find_op : t -> string -> op option

exception Unknown_op of { interface : string; op : string }
exception Arity_mismatch of { op : string; expected : int; got : int }

val apply :
  Checker.t ->
  t ->
  op:string ->
  callee:string ->
  args:Cap.t list ->
  f:(Cap.t list -> 'a) ->
  'a
(** [apply ck contract ~op ~callee ~args ~f] performs the declared
    transfers/lends for each argument and runs [f] with the callee-side
    capabilities (in parameter order).  Borrows end when [f] returns.
    @raise Unknown_op / Arity_mismatch on contract misuse. *)

val pp_op : Format.formatter -> op -> unit
val pp : Format.formatter -> t -> unit
