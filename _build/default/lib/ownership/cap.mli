(** Capability tokens: runtime witnesses of memory-access rights.

    Ownership-safe interfaces (roadmap step 3) pass capabilities instead of
    raw pointers.  A capability names a region, a sharing {!mode}, and a
    holder; {!Checker} validates every access against the region's current
    sharing state. *)

type mode =
  | Owner  (** full rights: read, write, free, lend *)
  | Exclusive_borrow  (** read + write until the call returns (model 2) *)
  | Shared_borrow  (** read only until the call returns (model 3) *)

val mode_to_string : mode -> string

type t = private {
  cap_id : int;
  region_id : int;
  mode : mode;
  holder : string;  (** the module or thread holding this capability *)
  mutable revoked : bool;
}

val make : region_id:int -> mode:mode -> holder:string -> t

val revoke : t -> unit
(** Invalidate the capability (used by the checker during lends and on
    transfer/free). *)

val restore : t -> unit
val is_valid : t -> bool
val can_write : t -> bool
val can_free : t -> bool
val pp : Format.formatter -> t -> unit
