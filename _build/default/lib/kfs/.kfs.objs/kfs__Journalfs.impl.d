lib/kfs/journalfs.ml: Array Buffer Bytes Char Fs_spec Hashtbl Int32 Kblock Ksim Kspec List Option Result String
