lib/kfs/unionfs.mli: Kspec Kvfs
