lib/kfs/memfs_typed.ml: Fs_spec Hashtbl Ksim Kspec List String
