lib/kfs/memfs_verified.mli: Kspec Kvfs
