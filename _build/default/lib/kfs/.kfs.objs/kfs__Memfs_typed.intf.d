lib/kfs/memfs_typed.mli: Kvfs
