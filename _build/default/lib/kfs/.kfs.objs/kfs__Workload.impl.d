lib/kfs/workload.ml: Array Char Fs_spec Ksim Kspec Kvfs List String
