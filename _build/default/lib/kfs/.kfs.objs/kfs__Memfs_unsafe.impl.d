lib/kfs/memfs_unsafe.ml: Fs_spec Hashtbl Ksim Kspec Kvfs List Option String
