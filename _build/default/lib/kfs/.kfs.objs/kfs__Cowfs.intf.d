lib/kfs/cowfs.mli: Ksim Kspec Kvfs
