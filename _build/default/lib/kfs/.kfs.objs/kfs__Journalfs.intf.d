lib/kfs/journalfs.mli: Kblock Kspec Kvfs
