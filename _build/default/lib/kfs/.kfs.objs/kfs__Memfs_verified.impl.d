lib/kfs/memfs_verified.ml: Fs_spec Ksim Kspec List Option Refine Result String
