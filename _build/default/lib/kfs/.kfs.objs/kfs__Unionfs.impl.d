lib/kfs/unionfs.ml: Fs_spec Ksim Kspec Kvfs List Memfs_typed Result String
