lib/kfs/memfs_owned.ml: Bytes Fs_spec Hashtbl Ksim Kspec List Option Ownership String
