lib/kfs/memfs_owned.mli: Kvfs Ownership
