lib/kfs/memfs_unsafe.mli: Ksim Kspec Kvfs
