lib/kfs/cowfs.ml: Fs_spec Ksim Kspec List Map Option Result String
