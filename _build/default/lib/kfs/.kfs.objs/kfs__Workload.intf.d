lib/kfs/workload.mli: Kspec Kvfs
