(* The type-safe in-memory file system: roadmap step 2.

   Same inode-table shape as the unsafe variant, but no [Dyn] private
   data, no error-pointer returns, no manual allocation: lifetimes follow
   OCaml values, results are sum types.  By construction, the type
   confusion and errptr-misuse faults of [Memfs_unsafe] cannot be
   expressed here. *)

open Kspec

type file_data = { mutable content : string }

type node =
  | File of file_data
  | Dir of (string, int) Hashtbl.t

type fs = {
  inodes : (int, node) Hashtbl.t;
  mutable next_ino : int;
}

let fs_name = "memfs_typed"
let stage = 2

let root_ino = 0

let mkfs () =
  let inodes = Hashtbl.create 64 in
  Hashtbl.replace inodes root_ino (Dir (Hashtbl.create 8));
  { inodes; next_ino = 1 }

let node fs ino = Hashtbl.find_opt fs.inodes ino

let fresh_ino fs =
  let ino = fs.next_ino in
  fs.next_ino <- ino + 1;
  ino

(* Walk a path to its inode. *)
let rec walk fs ino = function
  | [] -> Some ino
  | comp :: rest -> (
      match node fs ino with
      | Some (Dir entries) -> (
          match Hashtbl.find_opt entries comp with
          | Some child -> walk fs child rest
          | None -> None)
      | Some (File _) | None -> None)

let lookup fs path = walk fs root_ino path

let lookup_node fs path =
  match lookup fs path with Some ino -> node fs ino | None -> None

let is_dir fs path =
  match lookup_node fs path with Some (Dir _) -> true | Some (File _) | None -> false

(* Mirrors [Fs_spec.parent_ready]: EINVAL on the root, ENOENT when the
   parent is missing or not a directory. *)
let parent_entries fs path =
  match Fs_spec.parent path with
  | None -> Error Ksim.Errno.EINVAL
  | Some par -> (
      match lookup_node fs par with
      | Some (Dir entries) -> Ok entries
      | Some (File _) | None -> Error Ksim.Errno.ENOENT)

let basename_exn path =
  match Fs_spec.basename path with Some name -> name | None -> assert false

let add_node fs path make_node =
  match parent_entries fs path with
  | Error e -> Error e
  | Ok entries ->
      if Hashtbl.mem entries (basename_exn path) then Error Ksim.Errno.EEXIST
      else begin
        let ino = fresh_ino fs in
        Hashtbl.replace fs.inodes ino (make_node ());
        Hashtbl.replace entries (basename_exn path) ino;
        Ok Fs_spec.Unit
      end

let with_file fs path f =
  match lookup_node fs path with
  | Some (File file) -> f file
  | Some (Dir _) -> Error Ksim.Errno.EISDIR
  | None -> if is_dir fs path || path = [] then Error Ksim.Errno.EISDIR else Error Ksim.Errno.ENOENT

(* Collect the subtree rooted at [ino] as (relative path, ino) pairs. *)
let rec subtree fs ino rel acc =
  match node fs ino with
  | Some (Dir entries) ->
      Hashtbl.fold (fun name child acc -> subtree fs child (rel @ [ name ]) acc) entries
        ((rel, ino) :: acc)
  | Some (File _) -> (rel, ino) :: acc
  | None -> acc

let remove_subtree fs ino =
  List.iter (fun (_, i) -> Hashtbl.remove fs.inodes i) (subtree fs ino [] [])

let apply fs (op : Fs_spec.op) : Fs_spec.result =
  match op with
  | Create path -> add_node fs path (fun () -> File { content = "" })
  | Mkdir path -> add_node fs path (fun () -> Dir (Hashtbl.create 8))
  | Write { file; off; data } ->
      if off < 0 then Error Ksim.Errno.EINVAL
      else
        with_file fs file (fun f ->
            f.content <- Fs_spec.write_at f.content ~off ~data;
            Ok Fs_spec.Unit)
  | Read { file; off; len } ->
      if off < 0 || len < 0 then Error Ksim.Errno.EINVAL
      else with_file fs file (fun f -> Ok (Fs_spec.Data (Fs_spec.read_at f.content ~off ~len)))
  | Truncate (path, size) ->
      if size < 0 then Error Ksim.Errno.EINVAL
      else
        with_file fs path (fun f ->
            let content = f.content in
            f.content <-
              (if String.length content >= size then String.sub content 0 size
               else content ^ String.make (size - String.length content) '\000');
            Ok Fs_spec.Unit)
  | Unlink path -> (
      match lookup_node fs path with
      | Some (File _) -> (
          match parent_entries fs path with
          | Error e -> Error e
          | Ok entries ->
              (match Hashtbl.find_opt entries (basename_exn path) with
              | Some ino -> Hashtbl.remove fs.inodes ino
              | None -> ());
              Hashtbl.remove entries (basename_exn path);
              Ok Fs_spec.Unit)
      | Some (Dir _) -> Error Ksim.Errno.EISDIR
      | None -> if path = [] then Error Ksim.Errno.EISDIR else Error Ksim.Errno.ENOENT)
  | Rmdir path when path = [] -> Error Ksim.Errno.EBUSY
  | Rmdir path -> (
      match lookup_node fs path with
      | Some (Dir entries) ->
          if Hashtbl.length entries > 0 then Error Ksim.Errno.ENOTEMPTY
          else (
            match parent_entries fs path with
            | Error e -> Error e
            | Ok parent ->
                (match Hashtbl.find_opt parent (basename_exn path) with
                | Some ino -> Hashtbl.remove fs.inodes ino
                | None -> ());
                Hashtbl.remove parent (basename_exn path);
                Ok Fs_spec.Unit)
      | Some (File _) -> Error Ksim.Errno.ENOTDIR
      | None -> if path = [] then Error Ksim.Errno.EBUSY else Error Ksim.Errno.ENOENT)
  | Rename ([], _) -> Error Ksim.Errno.ENOENT
  | Rename (src, dst) -> (
      match lookup fs src with
      | None -> Error Ksim.Errno.ENOENT
      | Some src_ino -> (
          if src = [] || dst = [] then Error Ksim.Errno.EINVAL
          else if Fs_spec.is_prefix src dst && src <> dst then Error Ksim.Errno.EINVAL
          else
            match parent_entries fs dst with
            | Error e -> Error e
            | Ok dst_entries -> (
                let src_node = node fs src_ino in
                let dst_node = lookup_node fs dst in
                let clash =
                  match (src_node, dst_node) with
                  | _, None -> Ok ()
                  | Some (File _), Some (File _) -> Ok ()
                  | Some (File _), Some (Dir _) -> Error Ksim.Errno.EISDIR
                  | Some (Dir _), Some (File _) -> Error Ksim.Errno.ENOTDIR
                  | Some (Dir _), Some (Dir d) ->
                      if Hashtbl.length d = 0 then Ok () else Error Ksim.Errno.ENOTEMPTY
                  | None, _ -> Error Ksim.Errno.ENOENT
                in
                match clash with
                | Error e -> Error e
                | Ok () ->
                    if src = dst then Ok Fs_spec.Unit
                    else begin
                      (* Drop the target (recursively if an empty dir), then
                         swing the directory entry — the pointer swing the
                         paper mentions; the model sees a prefix
                         substitution. *)
                      (match lookup fs dst with
                      | Some old_ino when old_ino <> src_ino -> remove_subtree fs old_ino
                      | Some _ | None -> ());
                      (match parent_entries fs src with
                      | Ok src_entries -> Hashtbl.remove src_entries (basename_exn src)
                      | Error _ -> ());
                      Hashtbl.replace dst_entries (basename_exn dst) src_ino;
                      Ok Fs_spec.Unit
                    end)))
  | Readdir path -> (
      match lookup_node fs path with
      | Some (Dir entries) ->
          Ok
            (Fs_spec.Names
               (Hashtbl.fold (fun name _ acc -> name :: acc) entries []
               |> List.sort String.compare))
      | Some (File _) -> Error Ksim.Errno.ENOTDIR
      | None -> Error Ksim.Errno.ENOENT)
  | Stat path -> (
      match lookup_node fs path with
      | Some (File f) -> Ok (Fs_spec.Attr { kind = `File; size = String.length f.content })
      | Some (Dir _) -> Ok (Fs_spec.Attr { kind = `Dir; size = 0 })
      | None -> Error Ksim.Errno.ENOENT)
  | Fsync -> Ok Fs_spec.Unit

let interpret fs : Fs_spec.state =
  let rec go ino rel acc =
    match node fs ino with
    | Some (Dir entries) ->
        let acc = if rel = [] then acc else Fs_spec.Pathmap.add rel Fs_spec.Dir acc in
        Hashtbl.fold (fun name child acc -> go child (rel @ [ name ]) acc) entries acc
    | Some (File f) -> Fs_spec.Pathmap.add rel (Fs_spec.File f.content) acc
    | None -> acc
  in
  go root_ino [] Fs_spec.empty
