(** Btrfs-flavoured copy-on-write file system with O(1) snapshots.

    The tree is a persistent value; snapshots are extra references to a
    root, sharing unchanged subtrees with the live tree.  Conforms to
    {!Kvfs.Iface.FS_OPS} and adds the snapshot API. *)

include Kvfs.Iface.FS_OPS

val snapshot : fs -> name:string -> unit Ksim.Errno.r
(** O(1): records the current root under [name].  [EEXIST] on reuse. *)

val snapshots : fs -> string list
(** Snapshot names, oldest first. *)

val rollback : fs -> name:string -> unit Ksim.Errno.r
(** Swing the live root back to a snapshot. *)

val delete_snapshot : fs -> name:string -> unit Ksim.Errno.r

type change =
  | Added of Kspec.Fs_spec.path
  | Removed of Kspec.Fs_spec.path
  | Modified of Kspec.Fs_spec.path

val diff : fs -> since:string -> change list Ksim.Errno.r
(** Paths that changed between a snapshot and the live tree. *)

val shared_nodes : fs -> with_snapshot:string -> int Ksim.Errno.r
(** Number of physically shared tree nodes between the live tree and a
    snapshot — the structural-sharing evidence. *)
