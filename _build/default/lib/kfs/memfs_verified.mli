(** "Verified" in-memory file system — roadmap step 4.

    {!Impl} is a functional path-trie (a different structure from the
    spec's flat map, so interpretation does real abstraction work);
    the exported operations wrap it in {!Kspec.Refine.Monitor}, checking
    every call against {!Kspec.Fs_spec} as it executes.
    @raise Kspec.Refine.Refinement_failure if the implementation ever
    diverges from the spec. *)

(** The bare, unmonitored implementation (used by the verification-
    overhead ablation bench and as a building block in tests). *)
module Impl : Kspec.Refine.FS_IMPL

include Kvfs.Iface.FS_OPS

val checked_ops : fs -> int
(** Operations refinement-checked so far on this instance. *)
