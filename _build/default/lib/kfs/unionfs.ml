(* An overlayfs-shaped union file system: a writable upper layer over a
   read-only lower layer, mounted through the modular interface only —
   it never sees either layer's internals, demonstrating that step-1
   interfaces are enough to build stacked file systems ("VFS was a
   response to the need to support new functionality").

   Deletions of lower entries are recorded as ".wh.<name>" whiteout files
   in the upper layer, exactly like overlayfs.  Directory rename returns
   EXDEV, as overlayfs itself does without redirect_dir. *)

open Kspec

type fs = {
  upper : Kvfs.Iface.instance;
  lower : Kvfs.Iface.instance;
}

let fs_name = "unionfs"
let stage = 2

let whiteout_prefix = ".wh."

let is_whiteout_name name =
  String.length name > String.length whiteout_prefix
  && String.sub name 0 (String.length whiteout_prefix) = whiteout_prefix

let whiteout_path path =
  match (Fs_spec.parent path, Fs_spec.basename path) with
  | Some par, Some base -> Some (par @ [ whiteout_prefix ^ base ])
  | _ -> None

let make ~upper ~lower = { upper; lower }

let mkfs () =
  {
    upper = Kvfs.Iface.make (module Memfs_typed) ();
    lower = Kvfs.Iface.make (module Memfs_typed) ();
  }

let upper fs = fs.upper
let lower fs = fs.lower

let stat_layer layer path : [ `File of int | `Dir ] option =
  match Kvfs.Iface.instance_apply layer (Fs_spec.Stat path) with
  | Ok (Fs_spec.Attr { kind = `File; size }) -> Some (`File size)
  | Ok (Fs_spec.Attr { kind = `Dir; _ }) -> Some `Dir
  | Ok _ | Error _ -> None

let has_whiteout fs path =
  match whiteout_path path with
  | None -> false
  | Some wh -> stat_layer fs.upper wh <> None

(* Is any strict ancestor of [path] whited-out or shadowed by an upper
   file?  If so the lower entry at [path] is invisible. *)
let rec ancestor_hidden fs path =
  match Fs_spec.parent path with
  | None -> false
  | Some par ->
      par <> []
      && (has_whiteout fs par
         || (match stat_layer fs.upper par with Some (`File _) -> true | _ -> false)
         || ancestor_hidden fs par)

type visibility =
  | In_upper of [ `File of int | `Dir ]
  | In_lower of [ `File of int | `Dir ]
  | Absent

let visible fs path =
  match stat_layer fs.upper path with
  | Some v -> In_upper v
  | None ->
      if has_whiteout fs path || ancestor_hidden fs path then Absent
      else (
        match stat_layer fs.lower path with Some v -> In_lower v | None -> Absent)

let apply_upper fs op = Kvfs.Iface.instance_apply fs.upper op
let apply_lower fs op = Kvfs.Iface.instance_apply fs.lower op

(* Make sure every directory on the way to [path]'s parent exists in the
   upper layer (copy-up of the directory skeleton). *)
let ensure_upper_dirs fs path =
  let rec go prefix = function
    | [] | [ _ ] -> Ok ()
    | comp :: rest -> (
        let dir = prefix @ [ comp ] in
        match stat_layer fs.upper dir with
        | Some `Dir -> go dir rest
        | Some (`File _) -> Error Ksim.Errno.ENOTDIR
        | None -> (
            match apply_upper fs (Fs_spec.Mkdir dir) with
            | Ok _ | Error Ksim.Errno.EEXIST -> go dir rest
            | Error e -> Error e))
  in
  go [] path

let read_all layer path size =
  match Kvfs.Iface.instance_apply layer (Fs_spec.Read { file = path; off = 0; len = size }) with
  | Ok (Fs_spec.Data data) -> Ok data
  | Ok _ -> Error Ksim.Errno.EIO
  | Error e -> Error e

let remove_whiteout fs path =
  match whiteout_path path with
  | None -> ()
  | Some wh -> ignore (apply_upper fs (Fs_spec.Unlink wh))

(* Copy a lower file into the upper layer so it can be mutated. *)
let copy_up fs path size =
  let ( let* ) = Ksim.Errno.( let* ) in
  let* () = ensure_upper_dirs fs path in
  let* data = read_all fs.lower path size in
  let* () =
    match apply_upper fs (Fs_spec.Create path) with
    | Ok _ -> Ok ()
    | Error e -> Error e
  in
  match apply_upper fs (Fs_spec.Write { file = path; off = 0; data }) with
  | Ok _ -> Ok ()
  | Error e -> Error e

let merged_children fs path =
  let names layer =
    match Kvfs.Iface.instance_apply layer (Fs_spec.Readdir path) with
    | Ok (Fs_spec.Names names) -> names
    | Ok _ | Error _ -> []
  in
  let upper_names = names fs.upper in
  let lower_names =
    if ancestor_hidden fs path || has_whiteout fs path then [] else names fs.lower
  in
  let whiteouts, real_upper = List.partition is_whiteout_name upper_names in
  let hidden =
    List.map
      (fun wh -> String.sub wh (String.length whiteout_prefix)
                   (String.length wh - String.length whiteout_prefix))
      whiteouts
  in
  let lower_visible =
    List.filter (fun n -> not (List.mem n hidden) && not (List.mem n real_upper)) lower_names
  in
  List.sort String.compare (real_upper @ lower_visible)

(* Route a mutating file operation: copy-up if the file lives below. *)
let mutate_file fs path op =
  match visible fs path with
  | In_upper (`File _) -> apply_upper fs op
  | In_upper `Dir -> Error Ksim.Errno.EISDIR
  | In_lower (`File size) -> (
      match copy_up fs path size with Ok () -> apply_upper fs op | Error e -> Error e)
  | In_lower `Dir -> Error Ksim.Errno.EISDIR
  | Absent -> if path = [] then Error Ksim.Errno.EISDIR else Error Ksim.Errno.ENOENT

let parent_visible_dir fs path =
  match Fs_spec.parent path with
  | None -> Error Ksim.Errno.EINVAL
  | Some par -> (
      match visible fs par with
      | In_upper `Dir | In_lower `Dir -> Ok par
      | In_upper (`File _) | In_lower (`File _) | Absent ->
          if par = [] then Ok par else Error Ksim.Errno.ENOENT)

let add_entry fs path op =
  let ( let* ) = Ksim.Errno.( let* ) in
  match visible fs path with
  | In_upper _ | In_lower _ -> Error Ksim.Errno.EEXIST
  | Absent ->
      let* _ = parent_visible_dir fs path in
      let* () = ensure_upper_dirs fs path in
      remove_whiteout fs path;
      apply_upper fs op

let delete fs path ~in_lower =
  let ( let* ) = Ksim.Errno.( let* ) in
  let* () =
    match stat_layer fs.upper path with
    | Some (`File _) -> (
        match apply_upper fs (Fs_spec.Unlink path) with Ok _ -> Ok () | Error e -> Error e)
    | Some `Dir -> (
        (* The upper directory may hold only whiteout entries for lower
           children; they go with the directory. *)
        (match apply_upper fs (Fs_spec.Readdir path) with
        | Ok (Fs_spec.Names names) ->
            List.iter
              (fun name ->
                if is_whiteout_name name then
                  ignore (apply_upper fs (Fs_spec.Unlink (path @ [ name ]))))
              names
        | Ok _ | Error _ -> ());
        match apply_upper fs (Fs_spec.Rmdir path) with Ok _ -> Ok () | Error e -> Error e)
    | None -> Ok ()
  in
  if in_lower then begin
    let* () = ensure_upper_dirs fs path in
    match whiteout_path path with
    | None -> Error Ksim.Errno.EINVAL
    | Some wh -> (
        match apply_upper fs (Fs_spec.Create wh) with
        | Ok _ | Error Ksim.Errno.EEXIST -> Ok ()
        | Error e -> Error e)
  end
  else Ok ()

let lower_has fs path =
  (not (has_whiteout fs path))
  && (not (ancestor_hidden fs path))
  && stat_layer fs.lower path <> None

let apply fs (op : Fs_spec.op) : Fs_spec.result =
  match op with
  | Create path -> add_entry fs path (Fs_spec.Create path)
  | Mkdir path -> add_entry fs path (Fs_spec.Mkdir path)
  | Write { file; off; data } ->
      if off < 0 then Error Ksim.Errno.EINVAL
      else mutate_file fs file (Fs_spec.Write { file; off; data })
  | Truncate (path, size) ->
      if size < 0 then Error Ksim.Errno.EINVAL else mutate_file fs path (Fs_spec.Truncate (path, size))
  | Read { file; off; len } -> (
      if off < 0 || len < 0 then Error Ksim.Errno.EINVAL
      else
        match visible fs file with
        | In_upper (`File _) -> apply_upper fs op
        | In_lower (`File _) -> apply_lower fs (Fs_spec.Read { file; off; len })
        | In_upper `Dir | In_lower `Dir -> Error Ksim.Errno.EISDIR
        | Absent ->
            if file = [] then Error Ksim.Errno.EISDIR else Error Ksim.Errno.ENOENT)
  | Unlink path -> (
      match visible fs path with
      | In_upper (`File _) | In_lower (`File _) ->
          Result.map (fun () -> Fs_spec.Unit) (delete fs path ~in_lower:(lower_has fs path))
      | In_upper `Dir | In_lower `Dir -> Error Ksim.Errno.EISDIR
      | Absent -> if path = [] then Error Ksim.Errno.EISDIR else Error Ksim.Errno.ENOENT)
  | Rmdir [] -> Error Ksim.Errno.EBUSY
  | Rmdir path -> (
      match visible fs path with
      | In_upper `Dir | In_lower `Dir ->
          if merged_children fs path <> [] then Error Ksim.Errno.ENOTEMPTY
          else Result.map (fun () -> Fs_spec.Unit) (delete fs path ~in_lower:(lower_has fs path))
      | In_upper (`File _) | In_lower (`File _) -> Error Ksim.Errno.ENOTDIR
      | Absent -> Error Ksim.Errno.ENOENT)
  | Rename ([], _) -> Error Ksim.Errno.ENOENT
  | Rename (src, dst) -> (
      match visible fs src with
      | Absent -> Error Ksim.Errno.ENOENT
      | In_upper `Dir | In_lower `Dir ->
          (* overlayfs without redirect_dir refuses directory renames. *)
          Error Ksim.Errno.EXDEV
      | In_upper (`File size) | In_lower (`File size) -> (
          if dst = [] then Error Ksim.Errno.EINVAL
          else
            let ( let* ) = Ksim.Errno.( let* ) in
            let checked =
              let* _ = parent_visible_dir fs dst in
              match visible fs dst with
              | In_upper `Dir | In_lower `Dir -> Error Ksim.Errno.EISDIR
              | In_upper (`File _) | In_lower (`File _) | Absent -> Ok ()
            in
            match checked with
            | Error e -> Error e
            | Ok () ->
                if src = dst then Ok Fs_spec.Unit
                else
                  let source_layer =
                    match visible fs src with In_upper _ -> fs.upper | _ -> fs.lower
                  in
                  let move =
                    let* data = read_all source_layer src size in
                    let* () = delete fs src ~in_lower:(lower_has fs src) in
                    let* () = ensure_upper_dirs fs dst in
                    remove_whiteout fs dst;
                    let* () =
                      match visible fs dst with
                      | In_upper (`File _) | In_lower (`File _) -> delete fs dst ~in_lower:(lower_has fs dst)
                      | _ -> Ok ()
                    in
                    remove_whiteout fs dst;
                    let* () =
                      match apply_upper fs (Fs_spec.Create dst) with
                      | Ok _ -> Ok ()
                      | Error e -> Error e
                    in
                    match apply_upper fs (Fs_spec.Write { file = dst; off = 0; data }) with
                    | Ok _ -> Ok ()
                    | Error e -> Error e
                  in
                  Result.map (fun () -> Fs_spec.Unit) move))
  | Readdir path -> (
      match visible fs path with
      | In_upper `Dir | In_lower `Dir -> Ok (Fs_spec.Names (merged_children fs path))
      | In_upper (`File _) | In_lower (`File _) -> Error Ksim.Errno.ENOTDIR
      | Absent -> if path = [] then Ok (Fs_spec.Names (merged_children fs path)) else Error Ksim.Errno.ENOENT)
  | Stat path -> (
      match visible fs path with
      | In_upper (`File size) | In_lower (`File size) ->
          Ok (Fs_spec.Attr { kind = `File; size })
      | In_upper `Dir | In_lower `Dir -> Ok (Fs_spec.Attr { kind = `Dir; size = 0 })
      | Absent ->
          if path = [] then Ok (Fs_spec.Attr { kind = `Dir; size = 0 })
          else Error Ksim.Errno.ENOENT)
  | Fsync -> (
      match (apply_upper fs Fs_spec.Fsync, apply_lower fs Fs_spec.Fsync) with
      | Ok _, Ok _ -> Ok Fs_spec.Unit
      | Error e, _ | _, Error e -> Error e)

let interpret fs : Fs_spec.state =
  let upper_state = Kvfs.Iface.instance_interpret fs.upper in
  let lower_state = Kvfs.Iface.instance_interpret fs.lower in
  let is_wh path = match Fs_spec.basename path with Some b -> is_whiteout_name b | None -> false in
  let hidden_by_whiteout path =
    (* the exact path or any ancestor has a whiteout in upper *)
    let rec check p =
      (match whiteout_path p with
      | Some wh -> Fs_spec.Pathmap.mem wh upper_state
      | None -> false)
      ||
      match Fs_spec.parent p with Some par when par <> [] -> check par | _ -> false
    in
    check path
  in
  let shadowed_by_upper_file path =
    let rec check p =
      match Fs_spec.parent p with
      | Some par when par <> [] -> (
          match Fs_spec.Pathmap.find_opt par upper_state with
          | Some (Fs_spec.File _) -> true
          | _ -> check par)
      | _ -> false
    in
    check path
  in
  let merged =
    Fs_spec.Pathmap.fold
      (fun path node acc ->
        if hidden_by_whiteout path || shadowed_by_upper_file path then acc
        else Fs_spec.Pathmap.add path node acc)
      lower_state Fs_spec.empty
  in
  Fs_spec.Pathmap.fold
    (fun path node acc -> if is_wh path then acc else Fs_spec.Pathmap.add path node acc)
    upper_state merged
