(** Ownership-safe in-memory file system — roadmap step 3.

    File content lives in {!Ownership.Checker} regions; reads lend the
    region shared (model 3), writes lend it exclusive (model 2), unlink
    frees through the owner capability.  Use-after-free, double free,
    leak, and write-while-shared are checker violations rather than
    silent corruption.  Conforms to {!Kvfs.Iface.FS_OPS}. *)

include Kvfs.Iface.FS_OPS

val checker : fs -> Ownership.Checker.t
(** The checker, for asserting on violations and leaks in tests. *)

val destroy : fs -> bool
(** Unmount: free every region; [true] when nothing leaked. *)
