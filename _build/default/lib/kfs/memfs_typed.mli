(** Type-safe in-memory file system — roadmap step 2.

    Inode-table design like {!Memfs_unsafe}, but with no [Dyn] private
    data, no error-pointer returns, and no manual allocation: the type
    confusion and errptr-misuse bug classes cannot be expressed.
    Conforms to {!Kvfs.Iface.FS_OPS}. *)

include Kvfs.Iface.FS_OPS
