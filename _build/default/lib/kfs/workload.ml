(* Deterministic workload generation.

   Traces are generated against a live spec state so that most operations
   are valid (with a configurable sprinkling of invalid ones, since error
   paths are where kernel bugs hide).  The same seed always yields the
   same trace, so benches, differential tests, and crash exploration all
   see identical inputs. *)

open Kspec

type profile =
  | Metadata_heavy  (** create/mkdir/rename/unlink churn, small writes *)
  | Data_heavy  (** few files, large sequential writes and reads *)
  | Mixed  (** an even blend, the default *)
  | Read_mostly  (** a populated tree, then ~90% reads *)

let profile_to_string = function
  | Metadata_heavy -> "metadata-heavy"
  | Data_heavy -> "data-heavy"
  | Mixed -> "mixed"
  | Read_mostly -> "read-mostly"

let all_profiles = [ Metadata_heavy; Data_heavy; Mixed; Read_mostly ]

let names = [| "alpha"; "beta"; "gamma"; "delta"; "data"; "log"; "tmp"; "cfg"; "idx"; "blob" |]

let gen_name rng = names.(Ksim.Rng.int rng (Array.length names))

(* Paths bound in the current spec state, split by kind. *)
let live_paths state =
  Fs_spec.Pathmap.fold
    (fun path node (files, dirs) ->
      match node with
      | Fs_spec.File _ -> (path :: files, dirs)
      | Fs_spec.Dir -> (files, path :: dirs))
    state ([], [])

let pick_dir rng dirs = if dirs = [] || Ksim.Rng.int rng 4 = 0 then [] else Ksim.Rng.pick rng dirs

let random_payload rng max_len =
  let len = 1 + Ksim.Rng.int rng (max max_len 1) in
  String.init len (fun _ -> Char.chr (Char.code 'a' + Ksim.Rng.int rng 26))

let gen_op rng state ~payload ~weights =
  let files, dirs = live_paths state in
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 weights in
  let rec pick n = function
    | [] -> assert false
    | (w, f) :: rest -> if n < w then f () else pick (n - w) rest
  in
  let new_path () = pick_dir rng dirs @ [ gen_name rng ] in
  (* Until files exist, file-targeting ops would all fail; creating first
     keeps traces mostly valid while still exercising error paths once the
     namespace is populated (collisions, unlinked targets, ...). *)
  let no_files = files = [] in
  let some_file () = match files with [] -> new_path () | fs -> Ksim.Rng.pick rng fs in
  let some_dir () = match dirs with [] -> new_path () | ds -> Ksim.Rng.pick rng ds in
  pick (Ksim.Rng.int rng total)
    (List.map
       (fun (w, kind) ->
         ( w,
           fun () ->
             let kind =
               match kind with
               | (`Write | `Read | `Truncate | `Unlink | `Rename | `Stat) when no_files ->
                   `Create
               | k -> k
             in
             match kind with
             | `Create -> Fs_spec.Create (new_path ())
             | `Mkdir -> Fs_spec.Mkdir (new_path ())
             | `Write ->
                 Fs_spec.Write
                   {
                     file = some_file ();
                     off = Ksim.Rng.int rng (payload / 2 + 1);
                     data = random_payload rng payload;
                   }
             | `Read ->
                 Fs_spec.Read
                   { file = some_file (); off = Ksim.Rng.int rng (payload + 1); len = payload }
             | `Truncate -> Fs_spec.Truncate (some_file (), Ksim.Rng.int rng payload)
             | `Unlink -> Fs_spec.Unlink (some_file ())
             | `Rmdir -> Fs_spec.Rmdir (some_dir ())
             | `Rename -> Fs_spec.Rename (some_file (), new_path ())
             | `Rename_dir -> Fs_spec.Rename (some_dir (), new_path ())
             | `Readdir -> Fs_spec.Readdir (some_dir ())
             | `Stat -> Fs_spec.Stat (some_file ())
             | `Fsync -> Fs_spec.Fsync ))
       weights)

let weights_of_profile = function
  | Metadata_heavy ->
      [ (20, `Create); (12, `Mkdir); (6, `Write); (6, `Read); (10, `Unlink); (6, `Rmdir);
        (12, `Rename); (4, `Rename_dir); (10, `Readdir); (10, `Stat); (4, `Fsync) ]
  | Data_heavy ->
      [ (4, `Create); (1, `Mkdir); (40, `Write); (30, `Read); (4, `Truncate); (2, `Unlink);
        (2, `Rename); (4, `Readdir); (8, `Stat); (5, `Fsync) ]
  | Mixed ->
      [ (12, `Create); (6, `Mkdir); (18, `Write); (18, `Read); (5, `Truncate); (8, `Unlink);
        (3, `Rmdir); (6, `Rename); (2, `Rename_dir); (8, `Readdir); (10, `Stat); (4, `Fsync) ]
  | Read_mostly ->
      [ (2, `Create); (1, `Mkdir); (5, `Write); (60, `Read); (2, `Unlink); (10, `Readdir);
        (18, `Stat); (2, `Fsync) ]

let payload_of_profile = function
  | Metadata_heavy -> 16
  | Data_heavy -> 2048
  | Mixed -> 128
  | Read_mostly -> 256

let generate ?(seed = 42) ?(payload = -1) profile ~ops =
  let rng = Ksim.Rng.of_int seed in
  let payload = if payload > 0 then payload else payload_of_profile profile in
  let weights = weights_of_profile profile in
  let rec go state n acc =
    if n = 0 then List.rev acc
    else
      let op = gen_op rng state ~payload ~weights in
      let state', _ = Fs_spec.step state op in
      go state' (n - 1) (op :: acc)
  in
  go Fs_spec.empty ops []

(* A small fixed smoke trace used by examples and quick tests. *)
let smoke : Fs_spec.op list =
  let p = Fs_spec.path_of_string in
  [
    Mkdir (p "/etc");
    Mkdir (p "/var");
    Mkdir (p "/var/log");
    Create (p "/etc/hostname");
    Write { file = p "/etc/hostname"; off = 0; data = "safeos\n" };
    Create (p "/var/log/boot.log");
    Write { file = p "/var/log/boot.log"; off = 0; data = "booted kernel sim\n" };
    Fsync;
    Read { file = p "/etc/hostname"; off = 0; len = 64 };
    Rename (p "/var/log/boot.log", p "/var/log/boot.0");
    Readdir (p "/var/log");
    Stat (p "/etc/hostname");
    Truncate (p "/etc/hostname", 6);
    Unlink (p "/var/log/boot.0");
    Fsync;
  ]

(* Replay a trace against an instance, returning per-result counts. *)
let replay instance ops =
  List.fold_left
    (fun (ok, errs) op ->
      match Kvfs.Iface.instance_apply instance op with
      | Ok _ -> (ok + 1, errs)
      | Error _ -> (ok, errs + 1))
    (0, 0) ops
