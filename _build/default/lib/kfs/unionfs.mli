(** Overlayfs-shaped union file system built purely on the modular
    interface: a writable upper layer over a read-only lower layer, with
    ".wh.<name>" whiteout files recording deletions of lower entries,
    copy-up on mutation, and [EXDEV] on directory rename (as overlayfs
    itself without redirect_dir). *)

include Kvfs.Iface.FS_OPS

val make : upper:Kvfs.Iface.instance -> lower:Kvfs.Iface.instance -> fs
(** Union of two already-populated layers.  [mkfs] is [make] over two
    fresh {!Memfs_typed} instances. *)

val upper : fs -> Kvfs.Iface.instance
val lower : fs -> Kvfs.Iface.instance

val is_whiteout_name : string -> bool
val merged_children : fs -> Kspec.Fs_spec.path -> string list
