(** Deterministic workload (trace) generation.

    Traces are generated against a live spec state so most operations are
    valid, with a sprinkling of invalid ones (error paths are where kernel
    bugs hide).  Identical seeds yield identical traces across benches,
    differential tests, and crash exploration. *)

type profile =
  | Metadata_heavy  (** create/mkdir/rename/unlink churn, small writes *)
  | Data_heavy  (** few files, large sequential writes and reads *)
  | Mixed
  | Read_mostly

val profile_to_string : profile -> string
val all_profiles : profile list

val generate :
  ?seed:int -> ?payload:int -> profile -> ops:int -> Kspec.Fs_spec.op list
(** [generate profile ~ops] is a deterministic trace of [ops] operations.
    [payload] overrides the profile's write size. *)

val smoke : Kspec.Fs_spec.op list
(** A small fixed trace used by the quickstart example and smoke tests. *)

val replay : Kvfs.Iface.instance -> Kspec.Fs_spec.op list -> int * int
(** Run a trace; returns [(ok_count, err_count)]. *)
