(** The "C-style" in-memory file system — roadmap step 0.

    Deliberately uses the unsafe idioms the paper catalogues: manually
    managed content cells ({!Ksim.Kmem}), void-pointer private data
    between [write_begin]/[write_end], error-pointer returns, and
    sometimes-unlocked [i_size] updates.  {!faults} switches latent bugs
    of each class on; with all faults off the module is functionally
    correct, so the fault-injection experiment measures {e which roadmap
    step would have prevented what}. *)

type faults = {
  mutable use_after_free : bool;
      (** unlink frees the content but leaves the dentry dangling *)
  mutable double_free : bool;  (** unlink frees the content twice *)
  mutable memory_leak : bool;  (** unlink forgets to free the content *)
  mutable wrong_cast : bool;
      (** write_end casts its private void* to another component's type *)
  mutable missing_errptr_check : bool;
      (** read dereferences lookup's return without IS_ERR *)
  mutable skip_i_lock : bool;  (** i_size updated without holding i_lock *)
  mutable off_by_one : bool;  (** read drops the last byte: a semantic bug *)
}

val no_faults : unit -> faults

type fs

val fs_name : string
val mkfs : unit -> fs
val mkfs_with_faults : faults -> fs

val heap : fs -> Ksim.Kmem.t
(** The allocator, for observing UAF / double-free / leak events. *)

val faults : fs -> faults

(** The step-0 calling convention (error pointers, void*, int returns). *)
module Legacy : Kvfs.Iface.FS_OPS_LEGACY with type fs = fs

(** Step 1 applied to this module: the same code behind the modular
    interface. *)
module Modular : Kvfs.Iface.FS_OPS with type fs = fs

val interpret : fs -> Kspec.Fs_spec.state
