(* The "verified" in-memory file system: roadmap step 4.

   [Impl] is a functional path-trie — a genuinely different data structure
   from the spec's flat path map, so the interpretation function does real
   abstraction work.  [Checked] wraps it in [Kspec.Refine.Monitor]: every
   operation is checked against [Kspec.Fs_spec] as it executes, which is
   what "functionally verified" means inside the simulator.  The monitor's
   cost is the verification-overhead ablation in bench [roadmap/*]. *)

open Kspec

module Impl = struct
  type tree =
    | TFile of string
    | TDir of (string * tree) list (* sorted by name *)

  type t = { mutable root : tree }

  let name = "memfs_verified"
  let create () = { root = TDir [] }

  let rec assoc_set name value = function
    | [] -> [ (name, value) ]
    | (n, v) :: rest ->
        let c = String.compare name n in
        if c < 0 then (name, value) :: (n, v) :: rest
        else if c = 0 then (name, value) :: rest
        else (n, v) :: assoc_set name value rest

  let assoc_remove name entries = List.filter (fun (n, _) -> not (String.equal n name)) entries

  let rec find tree path =
    match (path, tree) with
    | [], t -> Some t
    | comp :: rest, TDir entries ->
        Option.bind (List.assoc_opt comp entries) (fun child -> find child rest)
    | _ :: _, TFile _ -> None

  let is_dir tree path = match find tree path with Some (TDir _) -> true | _ -> false

  (* Rebuild the tree with the directory at [dirpath] transformed by [f].
     ENOENT when the path to it is missing or passes through a file,
     mirroring [Fs_spec.parent_ready]. *)
  let rec in_dir tree dirpath f =
    match (dirpath, tree) with
    | [], TDir entries -> Result.map (fun entries' -> TDir entries') (f entries)
    | [], TFile _ -> Error Ksim.Errno.ENOENT
    | comp :: rest, TDir entries -> (
        match List.assoc_opt comp entries with
        | Some child ->
            Result.map
              (fun child' -> TDir (assoc_set comp child' entries))
              (in_dir child rest f)
        | None -> Error Ksim.Errno.ENOENT)
    | _ :: _, TFile _ -> Error Ksim.Errno.ENOENT

  let in_parent t path f =
    match Fs_spec.parent path with
    | None -> Error Ksim.Errno.EINVAL
    | Some par -> (
        match Fs_spec.basename path with
        | None -> Error Ksim.Errno.EINVAL
        | Some base -> in_dir t.root par (f base))

  let commit t = function
    | Ok root' ->
        t.root <- root';
        Ok Fs_spec.Unit
    | Error e -> Error e

  let add_entry t path node =
    commit t
      (in_parent t path (fun base entries ->
           if List.mem_assoc base entries then Error Ksim.Errno.EEXIST
           else Ok (assoc_set base node entries)))

  let update_file t path f =
    match find t.root path with
    | Some (TFile content) ->
        commit t
          (in_parent t path (fun base entries -> Ok (assoc_set base (TFile (f content)) entries)))
    | Some (TDir _) -> Error Ksim.Errno.EISDIR
    | None -> if is_dir t.root path then Error Ksim.Errno.EISDIR else Error Ksim.Errno.ENOENT

  let apply t (op : Fs_spec.op) : Fs_spec.result =
    match op with
    | Create path -> add_entry t path (TFile "")
    | Mkdir path -> add_entry t path (TDir [])
    | Write { file; off; data } ->
        if off < 0 then Error Ksim.Errno.EINVAL
        else update_file t file (fun content -> Fs_spec.write_at content ~off ~data)
    | Read { file; off; len } -> (
        if off < 0 || len < 0 then Error Ksim.Errno.EINVAL
        else
          match find t.root file with
          | Some (TFile content) -> Ok (Fs_spec.Data (Fs_spec.read_at content ~off ~len))
          | Some (TDir _) -> Error Ksim.Errno.EISDIR
          | None ->
              if is_dir t.root file then Error Ksim.Errno.EISDIR else Error Ksim.Errno.ENOENT)
    | Truncate (path, size) ->
        if size < 0 then Error Ksim.Errno.EINVAL
        else
          update_file t path (fun content ->
              if String.length content >= size then String.sub content 0 size
              else content ^ String.make (size - String.length content) '\000')
    | Unlink path -> (
        match find t.root path with
        | Some (TFile _) ->
            commit t (in_parent t path (fun base entries -> Ok (assoc_remove base entries)))
        | Some (TDir _) -> Error Ksim.Errno.EISDIR
        | None ->
            if is_dir t.root path then Error Ksim.Errno.EISDIR else Error Ksim.Errno.ENOENT)
    | Rmdir [] -> Error Ksim.Errno.EBUSY
    | Rmdir path -> (
        match find t.root path with
        | Some (TDir entries) ->
            if entries <> [] then Error Ksim.Errno.ENOTEMPTY
            else commit t (in_parent t path (fun base entries -> Ok (assoc_remove base entries)))
        | Some (TFile _) -> Error Ksim.Errno.ENOTDIR
        | None -> Error Ksim.Errno.ENOENT)
    | Rename ([], _) -> Error Ksim.Errno.ENOENT
    | Rename (src, dst) -> (
        match find t.root src with
        | None -> Error Ksim.Errno.ENOENT
        | Some moved -> (
            if dst = [] then Error Ksim.Errno.EINVAL
            else if Fs_spec.is_prefix src dst && src <> dst then Error Ksim.Errno.EINVAL
            else
              let dst_parent_ok =
                match Fs_spec.parent dst with
                | None -> Error Ksim.Errno.EINVAL
                | Some par ->
                    if is_dir t.root par then Ok () else Error Ksim.Errno.ENOENT
              in
              match dst_parent_ok with
              | Error e -> Error e
              | Ok () -> (
                  let clash =
                    match (moved, find t.root dst) with
                    | _, None -> Ok ()
                    | TFile _, Some (TFile _) -> Ok ()
                    | TFile _, Some (TDir _) -> Error Ksim.Errno.EISDIR
                    | TDir _, Some (TFile _) -> Error Ksim.Errno.ENOTDIR
                    | TDir _, Some (TDir entries) ->
                        if entries = [] then Ok () else Error Ksim.Errno.ENOTEMPTY
                  in
                  match clash with
                  | Error e -> Error e
                  | Ok () ->
                      if src = dst then Ok Fs_spec.Unit
                      else
                        (* Detach the subtree, then attach at dst. *)
                        let detached =
                          in_parent t src (fun base entries -> Ok (assoc_remove base entries))
                        in
                        (match detached with
                        | Error e -> Error e
                        | Ok root' ->
                            t.root <- root';
                            commit t
                              (in_parent t dst (fun base entries ->
                                   Ok (assoc_set base moved entries)))))))
    | Readdir path -> (
        match find t.root path with
        | Some (TDir entries) -> Ok (Fs_spec.Names (List.map fst entries))
        | Some (TFile _) -> Error Ksim.Errno.ENOTDIR
        | None -> Error Ksim.Errno.ENOENT)
    | Stat path -> (
        match find t.root path with
        | Some (TFile content) ->
            Ok (Fs_spec.Attr { kind = `File; size = String.length content })
        | Some (TDir _) -> Ok (Fs_spec.Attr { kind = `Dir; size = 0 })
        | None -> Error Ksim.Errno.ENOENT)
    | Fsync -> Ok Fs_spec.Unit

  let interpret t : Fs_spec.state =
    let rec go tree rel acc =
      match tree with
      | TFile content -> Fs_spec.Pathmap.add rel (Fs_spec.File content) acc
      | TDir entries ->
          let acc = if rel = [] then acc else Fs_spec.Pathmap.add rel Fs_spec.Dir acc in
          List.fold_left (fun acc (name, child) -> go child (rel @ [ name ]) acc) acc entries
    in
    go t.root [] Fs_spec.empty
end

module Checked = Refine.Monitor (Impl)

(* Present the monitored implementation as a mountable file system. *)
type fs = Checked.t

let fs_name = "memfs_verified"
let stage = 4
let mkfs = Checked.create
let apply = Checked.apply
let interpret = Checked.interpret
let checked_ops = Checked.checked_ops
