(** The VFS: a mount table dispatching operations to mounted file systems
    strictly through the modular {!Iface.FS_OPS} interface (roadmap
    step 1).  The dispatch cost relative to a direct call is measured by
    bench [modularity/*]. *)

type t

val create : unit -> t

val mount : t -> at:Kspec.Fs_spec.path -> Iface.instance -> unit Ksim.Errno.r
(** [EBUSY] when something is already mounted at [at]. *)

val umount : t -> at:Kspec.Fs_spec.path -> unit Ksim.Errno.r

val mounts : t -> (Kspec.Fs_spec.path * string) list
(** Mount points and the names of the file systems on them. *)

val apply : t -> Kspec.Fs_spec.op -> Kspec.Fs_spec.result
(** Resolve the op's path to the longest-prefix mount, rebase, dispatch.
    Cross-mount rename is [EXDEV]; [Fsync] fans out to all mounts. *)

val interpret : t -> Kspec.Fs_spec.state
(** The whole namespace as one abstract state: each mounted file system's
    state re-rooted under its mount point. *)
