(* The VFS proper: a mount table dispatching abstract operations to
   mounted file systems strictly through the modular interface.

   "Callers of any module must only reference the modular interface and
   cannot directly depend on any specific implementation" — this is that
   interface.  The cost of the indirection relative to a direct call is
   measured by bench [modularity/*]. *)

type mount = {
  mount_point : Kspec.Fs_spec.path;
  fs : Iface.instance;
}

type t = { mutable mounts : mount list (* longest mount point first *) }

let create () = { mounts = [] }

let mounts t = List.map (fun m -> (m.mount_point, Iface.instance_name m.fs)) t.mounts

let mount t ~at fs =
  if List.exists (fun m -> m.mount_point = at) t.mounts then Error Ksim.Errno.EBUSY
  else begin
    t.mounts <-
      List.sort
        (fun a b -> compare (List.length b.mount_point) (List.length a.mount_point))
        ({ mount_point = at; fs } :: t.mounts);
    Ok ()
  end

let umount t ~at =
  if List.exists (fun m -> m.mount_point = at) t.mounts then begin
    t.mounts <- List.filter (fun m -> m.mount_point <> at) t.mounts;
    Ok ()
  end
  else Error Ksim.Errno.EINVAL

let resolve t path =
  List.find_map
    (fun m ->
      match Kspec.Fs_spec.strip_prefix m.mount_point path with
      | Some rest -> Some (m, rest)
      | None -> None)
    t.mounts

(* Rebase an operation into the target file system's namespace.  Rename
   across mounts is refused with EXDEV, like the real syscall. *)
let apply t (op : Kspec.Fs_spec.op) : Kspec.Fs_spec.result =
  let open Kspec.Fs_spec in
  let dispatch path make_op =
    match resolve t path with
    | None -> Error Ksim.Errno.ENOENT
    | Some (m, rest) -> Iface.instance_apply m.fs (make_op rest)
  in
  match op with
  | Create p -> dispatch p (fun rest -> Create rest)
  | Mkdir p -> dispatch p (fun rest -> Mkdir rest)
  | Write { file; off; data } -> dispatch file (fun file -> Write { file; off; data })
  | Read { file; off; len } -> dispatch file (fun file -> Read { file; off; len })
  | Truncate (p, size) -> dispatch p (fun rest -> Truncate (rest, size))
  | Unlink p -> dispatch p (fun rest -> Unlink rest)
  | Rmdir p -> dispatch p (fun rest -> Rmdir rest)
  | Rename (src, dst) -> (
      match (resolve t src, resolve t dst) with
      | Some (m1, r1), Some (m2, r2) when m1.mount_point = m2.mount_point ->
          Iface.instance_apply m1.fs (Rename (r1, r2))
      | Some _, Some _ -> Error Ksim.Errno.EXDEV
      | None, _ | _, None -> Error Ksim.Errno.ENOENT)
  | Readdir p -> dispatch p (fun rest -> Readdir rest)
  | Stat p -> dispatch p (fun rest -> Stat rest)
  | Fsync ->
      (* fsync fans out to every mounted file system. *)
      List.fold_left
        (fun acc m ->
          match (acc, Iface.instance_apply m.fs Fsync) with
          | Error e, _ -> Error e
          | Ok _, r -> r)
        (Ok Unit) t.mounts

(* Merge the mounted file systems' abstract states under their mount
   points — the whole kernel's file namespace as one spec state. *)
let interpret t =
  List.fold_left
    (fun acc m ->
      let sub = Iface.instance_interpret m.fs in
      let acc =
        (* The mount point itself must exist as a directory (unless root). *)
        if m.mount_point = [] then acc
        else Kspec.Fs_spec.Pathmap.add m.mount_point Kspec.Fs_spec.Dir acc
      in
      Kspec.Fs_spec.Pathmap.fold
        (fun path node acc -> Kspec.Fs_spec.Pathmap.add (m.mount_point @ path) node acc)
        sub acc)
    Kspec.Fs_spec.empty t.mounts
