lib/kvfs/iface.mli: Ksim Kspec Stdlib Vtypes
