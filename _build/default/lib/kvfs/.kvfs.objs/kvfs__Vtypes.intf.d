lib/kvfs/vtypes.mli: Format Ksim
