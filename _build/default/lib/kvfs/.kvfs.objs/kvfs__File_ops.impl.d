lib/kvfs/file_ops.ml: Hashtbl Ksim Kspec List String Vfs
