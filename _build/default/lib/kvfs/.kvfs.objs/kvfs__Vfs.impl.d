lib/kvfs/vfs.ml: Iface Ksim Kspec List
