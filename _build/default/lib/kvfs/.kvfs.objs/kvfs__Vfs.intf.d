lib/kvfs/vfs.mli: Iface Ksim Kspec
