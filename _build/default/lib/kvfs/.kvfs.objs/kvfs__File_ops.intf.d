lib/kvfs/file_ops.mli: Ksim Vfs
