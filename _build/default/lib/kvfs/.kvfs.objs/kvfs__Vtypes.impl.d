lib/kvfs/vtypes.ml: Fmt Ksim Printf
