lib/kvfs/iface.ml: Ksim Kspec Stdlib Vtypes
