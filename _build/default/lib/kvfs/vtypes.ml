(* Linux-shaped VFS data structures.

   The inode reproduces the sharing hazards the paper calls out in §4.3:
   [i_size] is a [Klock.Guarded] cell nominally protected by [i_lock] but
   "only maybe protected, according to the relevant comment" — unsafe file
   systems poke it through the unchecked accessors; [i_private] is the
   void-pointer payload file systems stash custom data in. *)

type file_kind =
  | Regular
  | Directory

let file_kind_to_string = function Regular -> "regular" | Directory -> "directory"

type inode = {
  ino : int;
  mutable kind : file_kind;
  i_lock : Ksim.Klock.t;
  i_size : int Ksim.Klock.Guarded.cell;
  mutable i_nlink : int;
  mutable i_version : int;
  mutable i_private : Ksim.Dyn.t;
}

let next_ino = ref 1

let make_inode ?(ino = -1) kind =
  let ino =
    if ino >= 0 then ino
    else begin
      incr next_ino;
      !next_ino
    end
  in
  let i_lock = Ksim.Klock.create ~name:(Printf.sprintf "i_lock:%d" ino) () in
  {
    ino;
    kind;
    i_lock;
    i_size = Ksim.Klock.Guarded.create ~lock:i_lock ~name:(Printf.sprintf "i_size:%d" ino) 0;
    i_nlink = 1;
    i_version = 0;
    i_private = Ksim.Dyn.null;
  }

let pp_inode ppf i =
  Fmt.pf ppf "inode %d (%s, size %d, nlink %d)" i.ino (file_kind_to_string i.kind)
    (Ksim.Klock.Guarded.unsafe_get i.i_size)
    i.i_nlink

type dentry = {
  d_name : string;
  d_inode : inode;
}

type file = {
  f_inode : inode;
  mutable f_pos : int;
  f_writable : bool;
}

let open_file ?(writable = true) inode = { f_inode = inode; f_pos = 0; f_writable = writable }
