(* The physical frame allocator.

   Frames are reference-counted so address spaces can share them
   (copy-on-write after fork, read-only file pages); a frame returns to
   the free list, zeroed, when its last reference drops.  The conclusion
   calls for "cleaner APIs for kernel functions (such as a new network or
   virtual memory stack)" — this layer and [Addr_space] are that stack,
   built typed from the start. *)

type frame = int

type t = {
  page_size : int;
  nframes : int;
  frames : bytes array;
  refcount : int array;
  mutable free_list : frame list;
  mutable total_allocs : int;
}

let create ~nframes ~page_size =
  if nframes <= 0 || page_size <= 0 then invalid_arg "Phys.create";
  {
    page_size;
    nframes;
    frames = Array.init nframes (fun _ -> Bytes.make page_size '\000');
    refcount = Array.make nframes 0;
    free_list = List.init nframes (fun i -> i);
    total_allocs = 0;
  }

let page_size t = t.page_size
let nframes t = t.nframes
let free_frames t = List.length t.free_list
let total_allocs t = t.total_allocs

let alloc t =
  match t.free_list with
  | [] -> None
  | frame :: rest ->
      t.free_list <- rest;
      t.refcount.(frame) <- 1;
      t.total_allocs <- t.total_allocs + 1;
      Some frame

let check t frame =
  if frame < 0 || frame >= t.nframes then invalid_arg "Phys: bad frame";
  if t.refcount.(frame) = 0 then invalid_arg "Phys: dead frame"

let refcount t frame =
  if frame < 0 || frame >= t.nframes then invalid_arg "Phys: bad frame";
  t.refcount.(frame)

let incref t frame =
  check t frame;
  t.refcount.(frame) <- t.refcount.(frame) + 1

let decref t frame =
  check t frame;
  t.refcount.(frame) <- t.refcount.(frame) - 1;
  if t.refcount.(frame) = 0 then begin
    Bytes.fill t.frames.(frame) 0 t.page_size '\000';
    t.free_list <- frame :: t.free_list
  end

let read t frame ~off ~len =
  check t frame;
  if off < 0 || len < 0 || off + len > t.page_size then invalid_arg "Phys.read";
  Bytes.sub_string t.frames.(frame) off len

let write t frame ~off data =
  check t frame;
  if off < 0 || off + String.length data > t.page_size then invalid_arg "Phys.write";
  Bytes.blit_string data 0 t.frames.(frame) off (String.length data)

let copy t ~src ~dst =
  check t src;
  check t dst;
  Bytes.blit t.frames.(src) 0 t.frames.(dst) 0 t.page_size
