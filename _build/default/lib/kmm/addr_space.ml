(* Address spaces: vmas, demand paging, copy-on-write fork.

   The software MMU: [read]/[write] walk pages and fault them in on
   demand — anonymous pages arrive zeroed, file-backed pages are filled
   from the VFS through the modular interface, and a write to a shared
   frame breaks copy-on-write.  All file mappings are private (MAP_PRIVATE):
   stores never reach the file, like the common case in real programs. *)

type prot = {
  pr_read : bool;
  pr_write : bool;
}

let prot_rw = { pr_read = true; pr_write = true }
let prot_ro = { pr_read = true; pr_write = false }

type backing =
  | Anon
  | File of {
      inst : Kvfs.Iface.instance;
      path : Kspec.Fs_spec.path;
      offset : int; (* byte offset of the mapping's first page *)
    }

type vma = {
  va_start : int; (* page-aligned byte address *)
  va_pages : int;
  mutable vprot : prot;
  vbacking : backing;
}

let vma_end vma page_size = vma.va_start + (vma.va_pages * page_size)

type page = {
  mutable frame : Phys.frame;
  mutable cow : bool;
}

type stats = {
  mutable minor_faults : int; (* anon zero-fill *)
  mutable file_faults : int; (* filled from the VFS *)
  mutable cow_breaks : int;
}

type t = {
  phys : Phys.t;
  mutable vmas : vma list; (* sorted by va_start *)
  pages : (int, page) Hashtbl.t; (* vpn -> page *)
  stats : stats;
  mutable next_mmap : int; (* search hint for address assignment *)
}

let mmap_base = 0x10000

let create phys =
  {
    phys;
    vmas = [];
    pages = Hashtbl.create 64;
    stats = { minor_faults = 0; file_faults = 0; cow_breaks = 0 };
    next_mmap = mmap_base;
  }

let page_size t = Phys.page_size t.phys
let stats t = t.stats
let vmas t = t.vmas
let resident_pages t = Hashtbl.length t.pages

let find_vma t addr =
  List.find_opt
    (fun vma -> addr >= vma.va_start && addr < vma_end vma (page_size t))
    t.vmas

let overlaps t start pages =
  let psz = page_size t in
  let fin = start + (pages * psz) in
  List.exists (fun vma -> start < vma_end vma psz && vma.va_start < fin) t.vmas

(* First-fit search for a free virtual range. *)
let pick_address t pages =
  let psz = page_size t in
  let rec go candidate =
    if overlaps t candidate pages then
      let next =
        List.fold_left
          (fun acc vma ->
            if candidate < vma_end vma psz && vma.va_start < candidate + (pages * psz) then
              max acc (vma_end vma psz)
            else acc)
          (candidate + psz) t.vmas
      in
      go next
    else candidate
  in
  go t.next_mmap

let mmap t ?addr ~len ~prot backing =
  let psz = page_size t in
  if len <= 0 then Error Ksim.Errno.EINVAL
  else
    let pages = (len + psz - 1) / psz in
    match addr with
    | Some a when a mod psz <> 0 || a < 0 -> Error Ksim.Errno.EINVAL
    | Some a when overlaps t a pages -> Error Ksim.Errno.EEXIST
    | _ ->
        let start = match addr with Some a -> a | None -> pick_address t pages in
        let vma = { va_start = start; va_pages = pages; vprot = prot; vbacking = backing } in
        t.vmas <-
          List.sort (fun a b -> compare a.va_start b.va_start) (vma :: t.vmas);
        t.next_mmap <- max t.next_mmap (vma_end vma psz);
        Ok start

let drop_page t vpn =
  match Hashtbl.find_opt t.pages vpn with
  | Some page ->
      Phys.decref t.phys page.frame;
      Hashtbl.remove t.pages vpn
  | None -> ()

let munmap t ~addr =
  match List.find_opt (fun vma -> vma.va_start = addr) t.vmas with
  | None -> Error Ksim.Errno.EINVAL
  | Some vma ->
      let psz = page_size t in
      for vpn = addr / psz to (vma_end vma psz / psz) - 1 do
        drop_page t vpn
      done;
      t.vmas <- List.filter (fun v -> v != vma) t.vmas;
      Ok ()

let mprotect t ~addr prot =
  match List.find_opt (fun vma -> vma.va_start = addr) t.vmas with
  | None -> Error Ksim.Errno.EINVAL
  | Some vma ->
      vma.vprot <- prot;
      Ok ()

(* Demand paging --------------------------------------------------------- *)

let fill_from_file t vma frame vpn =
  let psz = page_size t in
  match vma.vbacking with
  | Anon -> ()
  | File { inst; path; offset } -> (
      let page_off = ((vpn * psz) - vma.va_start) + offset in
      match
        Kvfs.Iface.instance_apply inst
          (Kspec.Fs_spec.Read { file = path; off = page_off; len = psz })
      with
      | Ok (Kspec.Fs_spec.Data data) -> Phys.write t.phys frame ~off:0 data
      | Ok _ | Error _ -> () (* missing file data reads as zeros, like mmap past EOF *))

let fault_in t vma vpn =
  match Hashtbl.find_opt t.pages vpn with
  | Some page -> Ok page
  | None -> (
      match Phys.alloc t.phys with
      | None -> Error Ksim.Errno.ENOMEM
      | Some frame ->
          (match vma.vbacking with
          | Anon -> t.stats.minor_faults <- t.stats.minor_faults + 1
          | File _ ->
              t.stats.file_faults <- t.stats.file_faults + 1;
              fill_from_file t vma frame vpn);
          let page = { frame; cow = false } in
          Hashtbl.replace t.pages vpn page;
          Ok page)

let break_cow t page =
  if page.cow then
    if Phys.refcount t.phys page.frame = 1 then begin
      page.cow <- false;
      Ok ()
    end
    else
      match Phys.alloc t.phys with
      | None -> Error Ksim.Errno.ENOMEM
      | Some fresh ->
          Phys.copy t.phys ~src:page.frame ~dst:fresh;
          Phys.decref t.phys page.frame;
          page.frame <- fresh;
          page.cow <- false;
          t.stats.cow_breaks <- t.stats.cow_breaks + 1;
          Ok ()
  else Ok ()

(* The software MMU: split [addr, addr+len) into per-page spans and apply
   [f page ~off ~len] to each. *)
let walk t ~addr ~len ~write f =
  let psz = page_size t in
  if len < 0 || addr < 0 then Error Ksim.Errno.EINVAL
  else begin
    let rec go cursor remaining acc =
      if remaining = 0 then Ok (List.rev acc)
      else
        match find_vma t cursor with
        | None -> Error Ksim.Errno.EFAULT
        | Some vma ->
            if (write && not vma.vprot.pr_write) || ((not write) && not vma.vprot.pr_read)
            then Error Ksim.Errno.EFAULT
            else (
              match fault_in t vma (cursor / psz) with
              | Error e -> Error e
              | Ok page -> (
                  let continue page =
                    let off = cursor mod psz in
                    let span = min remaining (psz - off) in
                    let piece = f page ~off ~len:span in
                    go (cursor + span) (remaining - span) (piece :: acc)
                  in
                  if write then
                    match break_cow t page with
                    | Error e -> Error e
                    | Ok () -> continue page
                  else continue page))
    in
    go addr len []
  end

let read t ~addr ~len =
  Result.map (String.concat "")
    (walk t ~addr ~len ~write:false (fun page ~off ~len ->
         Phys.read t.phys page.frame ~off ~len))

let write t ~addr data =
  let cursor = ref 0 in
  Result.map
    (fun (_ : unit list) -> ())
    (walk t ~addr ~len:(String.length data) ~write:true (fun page ~off ~len ->
         Phys.write t.phys page.frame ~off (String.sub data !cursor len);
         cursor := !cursor + len))

(* fork: share every resident frame copy-on-write. ------------------------ *)

let fork t =
  let child =
    {
      phys = t.phys;
      vmas = List.map (fun vma -> { vma with va_start = vma.va_start }) t.vmas;
      pages = Hashtbl.create (Hashtbl.length t.pages);
      stats = { minor_faults = 0; file_faults = 0; cow_breaks = 0 };
      next_mmap = t.next_mmap;
    }
  in
  Hashtbl.iter
    (fun vpn (page : page) ->
      Phys.incref t.phys page.frame;
      page.cow <- true;
      Hashtbl.replace child.pages vpn { frame = page.frame; cow = true })
    t.pages;
  child

let destroy t =
  Hashtbl.iter (fun _ page -> Phys.decref t.phys page.frame) t.pages;
  Hashtbl.reset t.pages;
  t.vmas <- []
