(** Reference-counted physical frame allocator — the bottom of the
    typed virtual-memory stack. *)

type frame = int

type t

val create : nframes:int -> page_size:int -> t
val page_size : t -> int
val nframes : t -> int
val free_frames : t -> int
val total_allocs : t -> int

val alloc : t -> frame option
(** A zeroed frame with refcount 1, or [None] when memory is exhausted. *)

val refcount : t -> frame -> int
val incref : t -> frame -> unit
val decref : t -> frame -> unit
(** Zeroes and frees the frame when the count reaches zero. *)

val read : t -> frame -> off:int -> len:int -> string
val write : t -> frame -> off:int -> string -> unit
val copy : t -> src:frame -> dst:frame -> unit
