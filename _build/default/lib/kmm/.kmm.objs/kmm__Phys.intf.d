lib/kmm/phys.mli:
