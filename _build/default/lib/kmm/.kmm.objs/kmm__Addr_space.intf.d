lib/kmm/addr_space.mli: Ksim Kspec Kvfs Phys
