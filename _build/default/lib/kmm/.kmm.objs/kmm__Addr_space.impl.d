lib/kmm/addr_space.ml: Hashtbl Ksim Kspec Kvfs List Phys Result String
