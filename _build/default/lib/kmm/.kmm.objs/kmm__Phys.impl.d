lib/kmm/phys.ml: Array Bytes List String
