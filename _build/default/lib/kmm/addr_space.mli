(** Address spaces: vmas, demand paging, copy-on-write fork.

    The typed virtual-memory stack the paper's conclusion asks for.
    {!read}/{!write} are the software MMU: they walk pages, fault them in
    on demand (anonymous pages zeroed, file pages filled through the
    modular VFS interface), and break copy-on-write on stores.  All file
    mappings are private: stores never reach the file. *)

type prot = {
  pr_read : bool;
  pr_write : bool;
}

val prot_rw : prot
val prot_ro : prot

type backing =
  | Anon
  | File of {
      inst : Kvfs.Iface.instance;
      path : Kspec.Fs_spec.path;
      offset : int;  (** byte offset of the mapping's first page *)
    }

type vma = {
  va_start : int;
  va_pages : int;
  mutable vprot : prot;
  vbacking : backing;
}

type stats = {
  mutable minor_faults : int;  (** anonymous zero-fill faults *)
  mutable file_faults : int;  (** pages filled from the VFS *)
  mutable cow_breaks : int;  (** shared frames copied on write *)
}

type t

val create : Phys.t -> t
val page_size : t -> int

val mmap : t -> ?addr:int -> len:int -> prot:prot -> backing -> int Ksim.Errno.r
(** Map [len] bytes (rounded up to pages); returns the chosen page-aligned
    address.  [EINVAL] on bad arguments, [EEXIST] when a fixed [addr]
    overlaps an existing mapping. *)

val munmap : t -> addr:int -> unit Ksim.Errno.r
(** Unmap the vma starting exactly at [addr]; releases its frames. *)

val mprotect : t -> addr:int -> prot -> unit Ksim.Errno.r
(** Change the protection of the vma starting exactly at [addr]. *)

val read : t -> addr:int -> len:int -> string Ksim.Errno.r
(** [EFAULT] on unmapped or non-readable ranges; faults pages in. *)

val write : t -> addr:int -> string -> unit Ksim.Errno.r
(** [EFAULT] on unmapped or non-writable ranges; breaks copy-on-write. *)

val fork : t -> t
(** Clone the address space; every resident frame becomes shared
    copy-on-write between parent and child. *)

val destroy : t -> unit
(** Release every resident frame (process exit). *)

val vmas : t -> vma list
val resident_pages : t -> int
val stats : t -> stats
