(** The record-level CVE corpus behind the paper's §2 categorization.

    A synthetic substitute for the public Linux CVE database, generated
    deterministically to the paper's published summary: 1475 records —
    620 type/ownership-preventable (42.0%), 516 functional (35.0%),
    339 other (23.0%) — spread over 2010–2020 and kernel subsystems.
    The analysis consumes only the records, so the real corpus could be
    swapped in without changing the analysis. *)

type record = {
  cve_id : string;
  year : int;
  component : string;
  cwe : Cwe.t;
}

val total : int
val type_ownership_count : int
val functional_count : int
val other_count : int

val records : unit -> record list
(** All 1475 records (deterministic; memoized). *)

val by_component : unit -> (string * int) list
val by_year : unit -> (int * int) list
