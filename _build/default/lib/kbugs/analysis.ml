(* The §2 categorization: which share of the CVE corpus each roadmap
   bucket would have prevented — the paper's 42% / 35% / 23% split. *)

type tally = {
  total : int;
  type_ownership : int;
  functional : int;
  other : int;
}

let categorize records =
  List.fold_left
    (fun t (r : Corpus.record) ->
      match Cwe.prevention r.cwe with
      | Cwe.By_type_ownership -> { t with type_ownership = t.type_ownership + 1 }
      | Cwe.By_functional -> { t with functional = t.functional + 1 }
      | Cwe.Other_cause -> { t with other = t.other + 1 })
    { total = List.length records; type_ownership = 0; functional = 0; other = 0 }
    records

let percent part total = 100.0 *. float_of_int part /. float_of_int total

let render_tally ppf t =
  Fmt.pf ppf "CWE categorization of %d Linux CVEs (2010-)@." t.total;
  Fmt.pf ppf "%s@." (String.make 64 '-');
  Fmt.pf ppf "  %-36s %5d  (%4.1f%%)@." "compile-time type + ownership safety" t.type_ownership
    (percent t.type_ownership t.total);
  Fmt.pf ppf "  %-36s %5d  (%4.1f%%)@." "functional correctness verification" t.functional
    (percent t.functional t.total);
  Fmt.pf ppf "  %-36s %5d  (%4.1f%%)@." "other causes" t.other (percent t.other t.total)

(* Per-CWE breakdown, the supporting detail behind the headline split. *)
let by_cwe records =
  List.fold_left
    (fun acc (r : Corpus.record) ->
      let key = r.cwe.Cwe.cwe_id in
      let n = try List.assoc key acc with Not_found -> 0 in
      (key, n + 1) :: List.remove_assoc key acc)
    [] records
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let render_by_cwe ppf records =
  Fmt.pf ppf "per-CWE breakdown:@.";
  List.iter
    (fun (cwe_id, count) ->
      match Cwe.find cwe_id with
      | Some cwe ->
          Fmt.pf ppf "  CWE-%-4d %-52s %5d  [%s]@." cwe_id cwe.Cwe.cwe_name count
            (Cwe.prevention_to_string (Cwe.prevention cwe))
      | None -> Fmt.pf ppf "  CWE-%-4d %-52s %5d@." cwe_id "?" count)
    (by_cwe records)

(* Cross-check the statistical claim against the executable evidence: for
   every injectable fault whose class the roadmap claims to prevent, the
   injection matrix must show prevented/detected at the claimed rung. *)
type consistency = {
  claims_checked : int;
  claims_upheld : int;
  broken : (Inject.fault * Safeos_core.Level.t) list;
}

let check_claims () =
  let m = Inject.matrix () in
  List.fold_left
    (fun acc (fault, cells) ->
      let bug = Inject.bug_class_of_fault fault in
      match Safeos_core.Level.prevented_at bug with
      | None -> acc
      | Some required ->
          List.fold_left
            (fun acc (stage, detection) ->
              if Safeos_core.Level.rank stage >= Safeos_core.Level.rank required then
                let upheld = Inject.is_stopped detection in
                {
                  claims_checked = acc.claims_checked + 1;
                  claims_upheld = (acc.claims_upheld + if upheld then 1 else 0);
                  broken = (if upheld then acc.broken else (fault, stage) :: acc.broken);
                }
              else acc)
            acc cells)
    { claims_checked = 0; claims_upheld = 0; broken = [] }
    m
