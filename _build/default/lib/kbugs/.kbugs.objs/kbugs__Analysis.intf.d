lib/kbugs/analysis.mli: Corpus Format Inject Safeos_core
