lib/kbugs/inject.mli: Format Safeos_core
