lib/kbugs/cwe.ml: Fmt List Safeos_core
