lib/kbugs/cwe.mli: Format Safeos_core
