lib/kbugs/inject.ml: Fmt Fs_spec Kfs Ksim Kspec Kvfs List Ownership Printf Refine Safeos_core Stdlib String
