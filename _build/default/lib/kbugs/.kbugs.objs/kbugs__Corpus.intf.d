lib/kbugs/corpus.mli: Cwe
