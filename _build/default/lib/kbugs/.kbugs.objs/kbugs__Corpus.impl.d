lib/kbugs/corpus.ml: Array Cwe Ksim Lazy List Printf String
