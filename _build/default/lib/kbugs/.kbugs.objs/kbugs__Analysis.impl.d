lib/kbugs/analysis.ml: Corpus Cwe Fmt Inject List Safeos_core String
