(** CWE taxonomy of the paper's §2 analysis, mapped to simulator bug
    classes and to the roadmap rung preventing each weakness. *)

type t = {
  cwe_id : int;
  cwe_name : string;
  bug_class : Safeos_core.Level.bug_class;
}

val catalog : t list
(** The weakness catalogue used by the corpus generator. *)

val find : int -> t option

type prevention =
  | By_type_ownership  (** roadmap steps 2–3 (the paper's ≈42%) *)
  | By_functional  (** roadmap step 4 (the additional ≈35%) *)
  | Other_cause  (** the remaining ≈23% *)

val prevention_to_string : prevention -> string
val prevention : t -> prevention
val by_prevention : prevention -> t list
val pp : Format.formatter -> t -> unit
