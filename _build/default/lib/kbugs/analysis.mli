(** The §2 categorization (TAB-CWE): the 42% / 35% / 23% split, plus the
    cross-check that the statistical claims agree with the executable
    fault-injection evidence. *)

type tally = {
  total : int;
  type_ownership : int;
  functional : int;
  other : int;
}

val categorize : Corpus.record list -> tally
val percent : int -> int -> float
val render_tally : Format.formatter -> tally -> unit

val by_cwe : Corpus.record list -> (int * int) list
(** CVE counts per CWE id, most frequent first. *)

val render_by_cwe : Format.formatter -> Corpus.record list -> unit

type consistency = {
  claims_checked : int;
  claims_upheld : int;
  broken : (Inject.fault * Safeos_core.Level.t) list;
}

val check_claims : unit -> consistency
(** Every (fault, rung ≥ preventing rung) cell of the injection matrix
    must be prevented/detected; [broken] lists the cells that are not. *)
