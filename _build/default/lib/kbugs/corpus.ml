(* The record-level CVE corpus behind the paper's §2 categorization.

   "Among the 1475 total CVEs we examined, roughly 42% could be prevented
   with compile-time type and ownership safety, and an additional 35%
   with functional correctness verification.  The remaining 23% have a
   variety of causes."

   The real corpus is the public CVE database for Linux since 2010, which
   is not shipped here; we substitute a synthetic record-level corpus
   generated to the paper's published summary statistics: 1475 records,
   620 (42.0%) type/ownership-preventable, 516 (35.0%) functional, 339
   (23.0%) other, spread over 2010-2020 and kernel subsystems with a
   deterministic generator.  The analysis code consumes only the records,
   so swapping in the real corpus would not change a line of it. *)

type record = {
  cve_id : string;
  year : int;
  component : string;
  cwe : Cwe.t;
}

let total = 1475
let type_ownership_count = 620 (* 42.0% *)
let functional_count = 516 (* 35.0% *)
let other_count = 339 (* 23.0% *)

let () = assert (type_ownership_count + functional_count + other_count = total)

let components = [| "fs"; "net"; "drivers"; "mm"; "core"; "crypto"; "sound" |]
let years = Array.init 11 (fun i -> 2010 + i)

(* Deterministically spread [count] records over the catalogue slice for
   one prevention category. *)
let generate_category rng ~count ~category ~start_index =
  let cwes = Array.of_list (Cwe.by_prevention category) in
  assert (Array.length cwes > 0);
  List.init count (fun i ->
      let cwe = cwes.(Ksim.Rng.int rng (Array.length cwes)) in
      let year = years.(Ksim.Rng.int rng (Array.length years)) in
      {
        cve_id = Printf.sprintf "CVE-%d-%04d" year (1000 + start_index + i);
        year;
        component = components.(Ksim.Rng.int rng (Array.length components));
        cwe;
      })

let corpus =
  lazy
    (let rng = Ksim.Rng.of_int 20210531 (* the workshop date *) in
     generate_category rng ~count:type_ownership_count ~category:Cwe.By_type_ownership
       ~start_index:0
     @ generate_category rng ~count:functional_count ~category:Cwe.By_functional
         ~start_index:type_ownership_count
     @ generate_category rng ~count:other_count ~category:Cwe.Other_cause
         ~start_index:(type_ownership_count + functional_count))

let records () = Lazy.force corpus

let by_component () =
  List.fold_left
    (fun acc r ->
      let n = try List.assoc r.component acc with Not_found -> 0 in
      (r.component, n + 1) :: List.remove_assoc r.component acc)
    [] (records ())
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let by_year () =
  List.fold_left
    (fun acc r ->
      let n = try List.assoc r.year acc with Not_found -> 0 in
      (r.year, n + 1) :: List.remove_assoc r.year acc)
    [] (records ())
  |> List.sort compare
