(* The type-confusion case study: CVE-2020-12351's shape.

   Bluetooth L2CAP/AMP packets arrive on numbered channels; the kernel
   keeps per-channel private data and the bug was a packet whose header
   claimed one channel type while the handler interpreted its private
   data as another — "custom data gets wrongly casted and leads to denial
   of service".

   [Unsafe] reproduces the idiom: the parser stores the decoded struct as
   a [Dyn] void pointer keyed by what the *header* claims, and the
   handler casts according to the *channel registry* — an attacker who
   lies in the header triggers [Dyn.Type_confusion] (the simulated crash).
   [Typed] is the step-2 version: decoding returns a sum type, handlers
   pattern-match, and a lying header is just an [EPROTO] error. *)

type channel_kind =
  | Control
  | Data

type control_block = {
  op : int;
  flags : int;
}

type data_payload = { body : string }

(* Wire format: [kind_byte: 0 control | 1 data][channel u8][rest...]
   Control rest: op u8, flags u8.  Data rest: body bytes. *)
let encode_control ~channel { op; flags } =
  Printf.sprintf "%c%c%c%c" '\000' (Char.chr channel) (Char.chr op) (Char.chr flags)

let encode_data ~channel { body } = Printf.sprintf "%c%c%s" '\001' (Char.chr channel) body

exception Malformed of string

let claimed_kind packet =
  if String.length packet < 2 then raise (Malformed "short packet")
  else
    match packet.[0] with
    | '\000' -> Control
    | '\001' -> Data
    | _ -> raise (Malformed "unknown kind byte")

let channel_of packet =
  if String.length packet < 2 then raise (Malformed "short packet")
  else Char.code packet.[1]

module Unsafe = struct
  (* One Dyn key per payload type: these are the C struct casts. *)
  let control_key : control_block Ksim.Dyn.Key.t = Ksim.Dyn.Key.create ~name:"amp.control_block"
  let data_key : data_payload Ksim.Dyn.Key.t = Ksim.Dyn.Key.create ~name:"amp.data_payload"

  type t = {
    (* channel number -> kind the stack registered it with *)
    channels : (int, channel_kind) Hashtbl.t;
    mutable control_ops : int list; (* ops executed, newest first *)
    mutable data_bytes : int;
  }

  let create () = { channels = Hashtbl.create 8; control_ops = []; data_bytes = 0 }

  let register t ~channel kind = Hashtbl.replace t.channels channel kind

  (* Parse according to the header's claim and park the struct behind a
     void pointer — faithfully, including the attacker-controlled bit. *)
  let parse packet =
    match claimed_kind packet with
    | Control ->
        if String.length packet < 4 then raise (Malformed "short control packet");
        Ksim.Dyn.inject control_key
          { op = Char.code packet.[2]; flags = Char.code packet.[3] }
    | Data ->
        Ksim.Dyn.inject data_key
          { body = String.sub packet 2 (String.length packet - 2) }

  (* Dispatch according to the channel registry, casting the private data
     to whatever this channel is supposed to carry.  If the header lied,
     the cast is wrong: Dyn.Type_confusion, our kernel oops. *)
  let receive t packet =
    let channel = channel_of packet in
    let private_data = parse packet in
    match Hashtbl.find_opt t.channels channel with
    | None -> Error Ksim.Errno.EINVAL
    | Some Control ->
        let cb = Ksim.Dyn.cast_exn control_key private_data in
        t.control_ops <- cb.op :: t.control_ops;
        Ok ()
    | Some Data ->
        let dp = Ksim.Dyn.cast_exn data_key private_data in
        t.data_bytes <- t.data_bytes + String.length dp.body;
        Ok ()

  let control_ops t = List.rev t.control_ops
  let data_bytes t = t.data_bytes
end

module Typed = struct
  type payload =
    | Control_payload of control_block
    | Data_payload of data_payload

  type t = {
    channels : (int, channel_kind) Hashtbl.t;
    mutable control_ops : int list;
    mutable data_bytes : int;
  }

  let create () = { channels = Hashtbl.create 8; control_ops = []; data_bytes = 0 }
  let register t ~channel kind = Hashtbl.replace t.channels channel kind

  let parse packet =
    match claimed_kind packet with
    | Control ->
        if String.length packet < 4 then raise (Malformed "short control packet")
        else Control_payload { op = Char.code packet.[2]; flags = Char.code packet.[3] }
    | Data -> Data_payload { body = String.sub packet 2 (String.length packet - 2) }

  (* The same dispatch, but the payload is a sum type: a mismatch between
     header and registry is an ordinary error, not memory corruption. *)
  let receive t packet =
    let channel = channel_of packet in
    match (Hashtbl.find_opt t.channels channel, parse packet) with
    | None, _ -> Error Ksim.Errno.EINVAL
    | Some Control, Control_payload cb ->
        t.control_ops <- cb.op :: t.control_ops;
        Ok ()
    | Some Data, Data_payload dp ->
        t.data_bytes <- t.data_bytes + String.length dp.body;
        Ok ()
    | Some Control, Data_payload _ | Some Data, Control_payload _ ->
        Error Ksim.Errno.EPROTO

  let control_ops t = List.rev t.control_ops
  let data_bytes t = t.data_bytes
end

(* The attack packet: header claims Data, sent on a Control channel. *)
let confusion_packet ~control_channel body = encode_data ~channel:control_channel { body }
