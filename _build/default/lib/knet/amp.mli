(** The type-confusion case study (CVE-2020-12351 shape, §4.2).

    Packets arrive on numbered channels; {!Unsafe} parses them into
    [Dyn] void pointers keyed by what the {e header} claims and dispatches
    by what the {e channel registry} says, so a lying header triggers
    {!Ksim.Dyn.Type_confusion} — the simulated kernel crash.  {!Typed} is
    the step-2 rewrite where the mismatch is an ordinary [EPROTO]. *)

type channel_kind =
  | Control
  | Data

type control_block = {
  op : int;
  flags : int;
}

type data_payload = { body : string }

exception Malformed of string

val encode_control : channel:int -> control_block -> string
val encode_data : channel:int -> data_payload -> string

val claimed_kind : string -> channel_kind
(** What the packet header claims. @raise Malformed on garbage. *)

val channel_of : string -> int

module Unsafe : sig
  type t

  val create : unit -> t
  val register : t -> channel:int -> channel_kind -> unit

  val receive : t -> string -> unit Ksim.Errno.r
  (** @raise Ksim.Dyn.Type_confusion when the header's claimed kind
      disagrees with the channel's registered kind. *)

  val control_ops : t -> int list
  val data_bytes : t -> int
end

module Typed : sig
  type t

  val create : unit -> t
  val register : t -> channel:int -> channel_kind -> unit

  val receive : t -> string -> unit Ksim.Errno.r
  (** A header/registry mismatch is [EPROTO]; no crash is possible. *)

  val control_ops : t -> int list
  val data_bytes : t -> int
end

val confusion_packet : control_channel:int -> string -> string
(** The attack: a Data-kind packet addressed to a Control channel. *)
