lib/knet/amp.ml: Char Hashtbl Ksim List Printf String
