lib/knet/sock.ml: Hashtbl Ksim List Queue String Tcp
