lib/knet/tcp.ml: Buffer Ksim List String
