lib/knet/sock.mli: Ksim Queue Tcp
