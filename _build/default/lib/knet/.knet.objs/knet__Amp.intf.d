lib/knet/amp.mli: Ksim
