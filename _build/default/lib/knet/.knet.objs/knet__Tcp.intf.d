lib/knet/tcp.mli: Ksim
