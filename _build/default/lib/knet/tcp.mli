(** Miniature TCP: the RFC 793 connection state machine with sequence
    tracking and in-order delivery over a lossless simulated link.
    The substrate for the socket-layer modularity and type-safety
    experiments. *)

type state =
  | Closed
  | Listen
  | Syn_sent
  | Syn_received
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Closing
  | Last_ack
  | Time_wait

val state_to_string : state -> string

type segment = {
  syn : bool;
  ack : bool;
  fin : bool;
  rst : bool;
  seq : int;
  ack_no : int;
  payload : string;
}

val plain_seg :
  ?syn:bool ->
  ?ack:bool ->
  ?fin:bool ->
  ?rst:bool ->
  ?seq:int ->
  ?ack_no:int ->
  ?payload:string ->
  unit ->
  segment

type t

val create : ?iss:int -> unit -> t
(** A closed endpoint with initial send sequence [iss] (default 100). *)

val state : t -> state
val received : t -> string
(** Application data delivered in order so far. *)

val listen : t -> unit Ksim.Errno.r
val connect : t -> unit Ksim.Errno.r
(** Send SYN, enter SYN_SENT. *)

val send : t -> string -> int Ksim.Errno.r
(** Queue data; [EPIPE] unless ESTABLISHED / CLOSE_WAIT. *)

val close : t -> unit Ksim.Errno.r
val handle : t -> segment -> unit
(** Process one incoming segment (RST handled in every state). *)

val take_outbox : t -> segment list
(** Drain segments queued for transmission. *)

val run_link : t -> t -> int
(** Exchange segments between two endpoints until quiescent; returns the
    segment count.  @raise Failure if the pair never quiesces. *)
