(* A miniature TCP state machine.

   The paper names the network stack as the subsystem where "references to
   TCP state can be found throughout generic socket code"; to study that
   coupling we need an actual TCP.  This is the RFC 793 connection state
   machine with sequence-number tracking and in-order data delivery over a
   lossless simulated link — enough to exercise handshake, teardown,
   simultaneous open, and data transfer in tests and benches. *)

type state =
  | Closed
  | Listen
  | Syn_sent
  | Syn_received
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Closing
  | Last_ack
  | Time_wait

let state_to_string = function
  | Closed -> "CLOSED"
  | Listen -> "LISTEN"
  | Syn_sent -> "SYN_SENT"
  | Syn_received -> "SYN_RECEIVED"
  | Established -> "ESTABLISHED"
  | Fin_wait_1 -> "FIN_WAIT_1"
  | Fin_wait_2 -> "FIN_WAIT_2"
  | Close_wait -> "CLOSE_WAIT"
  | Closing -> "CLOSING"
  | Last_ack -> "LAST_ACK"
  | Time_wait -> "TIME_WAIT"

type segment = {
  syn : bool;
  ack : bool;
  fin : bool;
  rst : bool;
  seq : int;
  ack_no : int;
  payload : string;
}

let plain_seg ?(syn = false) ?(ack = false) ?(fin = false) ?(rst = false) ?(seq = 0)
    ?(ack_no = 0) ?(payload = "") () =
  { syn; ack; fin; rst; seq; ack_no; payload }

type t = {
  mutable state : state;
  mutable snd_nxt : int; (* next sequence number to send *)
  mutable rcv_nxt : int; (* next sequence number expected *)
  mutable iss : int; (* initial send sequence *)
  mutable received : Buffer.t; (* in-order application data *)
  mutable outbox : segment list; (* segments to transmit, oldest first *)
}

let create ?(iss = 100) () =
  {
    state = Closed;
    snd_nxt = iss;
    rcv_nxt = 0;
    iss;
    received = Buffer.create 64;
    outbox = [];
  }

let state t = t.state
let received t = Buffer.contents t.received

let emit t seg = t.outbox <- t.outbox @ [ seg ]

let take_outbox t =
  let segs = t.outbox in
  t.outbox <- [];
  segs

(* User events ------------------------------------------------------------ *)

let listen t =
  match t.state with
  | Closed -> Ok (t.state <- Listen)
  | _ -> Error Ksim.Errno.EINVAL

let connect t =
  match t.state with
  | Closed ->
      emit t (plain_seg ~syn:true ~seq:t.snd_nxt ());
      t.snd_nxt <- t.snd_nxt + 1;
      t.state <- Syn_sent;
      Ok ()
  | _ -> Error Ksim.Errno.EINVAL

let send t data =
  match t.state with
  | Established | Close_wait ->
      emit t (plain_seg ~ack:true ~seq:t.snd_nxt ~ack_no:t.rcv_nxt ~payload:data ());
      t.snd_nxt <- t.snd_nxt + String.length data;
      Ok (String.length data)
  | _ -> Error Ksim.Errno.EPIPE

let close t =
  match t.state with
  | Established ->
      emit t (plain_seg ~fin:true ~ack:true ~seq:t.snd_nxt ~ack_no:t.rcv_nxt ());
      t.snd_nxt <- t.snd_nxt + 1;
      t.state <- Fin_wait_1;
      Ok ()
  | Close_wait ->
      emit t (plain_seg ~fin:true ~ack:true ~seq:t.snd_nxt ~ack_no:t.rcv_nxt ());
      t.snd_nxt <- t.snd_nxt + 1;
      t.state <- Last_ack;
      Ok ()
  | Syn_sent | Listen ->
      t.state <- Closed;
      Ok ()
  | _ -> Error Ksim.Errno.EINVAL

(* Segment arrival ---------------------------------------------------------- *)

let ack_segment t = plain_seg ~ack:true ~seq:t.snd_nxt ~ack_no:t.rcv_nxt ()

let deliver t seg =
  if seg.seq = t.rcv_nxt && String.length seg.payload > 0 then begin
    Buffer.add_string t.received seg.payload;
    t.rcv_nxt <- t.rcv_nxt + String.length seg.payload;
    emit t (ack_segment t)
  end

let handle t seg =
  if seg.rst then t.state <- Closed
  else
    match t.state with
    | Closed -> ()
    | Listen ->
        if seg.syn then begin
          t.rcv_nxt <- seg.seq + 1;
          emit t (plain_seg ~syn:true ~ack:true ~seq:t.snd_nxt ~ack_no:t.rcv_nxt ());
          t.snd_nxt <- t.snd_nxt + 1;
          t.state <- Syn_received
        end
    | Syn_sent ->
        if seg.syn && seg.ack && seg.ack_no = t.snd_nxt then begin
          t.rcv_nxt <- seg.seq + 1;
          emit t (ack_segment t);
          t.state <- Established
        end
        else if seg.syn && not seg.ack then begin
          (* Simultaneous open. *)
          t.rcv_nxt <- seg.seq + 1;
          emit t (plain_seg ~syn:true ~ack:true ~seq:t.iss ~ack_no:t.rcv_nxt ());
          t.state <- Syn_received
        end
    | Syn_received ->
        if seg.ack && seg.ack_no = t.snd_nxt then begin
          t.state <- Established;
          deliver t seg
        end
    | Established ->
        deliver t seg;
        if seg.fin && seg.seq = t.rcv_nxt then begin
          t.rcv_nxt <- t.rcv_nxt + 1;
          emit t (ack_segment t);
          t.state <- Close_wait
        end
    | Fin_wait_1 ->
        deliver t seg;
        if seg.fin && seg.ack && seg.ack_no = t.snd_nxt && seg.seq = t.rcv_nxt then begin
          t.rcv_nxt <- t.rcv_nxt + 1;
          emit t (ack_segment t);
          t.state <- Time_wait
        end
        else if seg.fin && seg.seq = t.rcv_nxt then begin
          t.rcv_nxt <- t.rcv_nxt + 1;
          emit t (ack_segment t);
          t.state <- Closing
        end
        else if seg.ack && seg.ack_no = t.snd_nxt then t.state <- Fin_wait_2
    | Fin_wait_2 ->
        deliver t seg;
        if seg.fin && seg.seq = t.rcv_nxt then begin
          t.rcv_nxt <- t.rcv_nxt + 1;
          emit t (ack_segment t);
          t.state <- Time_wait
        end
    | Close_wait -> ()
    | Closing -> if seg.ack && seg.ack_no = t.snd_nxt then t.state <- Time_wait
    | Last_ack -> if seg.ack && seg.ack_no = t.snd_nxt then t.state <- Closed
    | Time_wait -> if seg.fin then emit t (ack_segment t)

(* A lossless loopback link between two endpoints: repeatedly moves every
   pending segment until both outboxes drain.  Returns the number of
   segments exchanged. *)
let run_link a b =
  let exchanged = ref 0 in
  let rec pump budget =
    if budget = 0 then failwith "Tcp.run_link: no quiescence";
    let a_out = take_outbox a and b_out = take_outbox b in
    if a_out = [] && b_out = [] then ()
    else begin
      exchanged := !exchanged + List.length a_out + List.length b_out;
      List.iter (handle b) a_out;
      List.iter (handle a) b_out;
      pump (budget - 1)
    end
  in
  pump 64;
  !exchanged
