(* The buffer cache and its infamous [buffer_head] state flags.

   The paper's functional-correctness case study: buffer_head "includes 16
   state flags ... set independently, resulting in many possible
   combinations of states.  Not all of the combinations are valid."  We
   reproduce the 16 flags, encode the validity rules explicitly, and let
   [validate] report which rule a given flag combination breaks — turning
   the folklore English comments into a checkable specification. *)

type flag =
  | Uptodate
  | Dirty
  | Lock
  | Req
  | Mapped
  | New
  | Async_read
  | Async_write
  | Delay
  | Boundary
  | Write_io_error
  | Unwritten
  | Quiet
  | Meta
  | Prio
  | Defer_completion

let all_flags =
  [ Uptodate; Dirty; Lock; Req; Mapped; New; Async_read; Async_write; Delay; Boundary;
    Write_io_error; Unwritten; Quiet; Meta; Prio; Defer_completion ]

let flag_to_string = function
  | Uptodate -> "uptodate"
  | Dirty -> "dirty"
  | Lock -> "lock"
  | Req -> "req"
  | Mapped -> "mapped"
  | New -> "new"
  | Async_read -> "async_read"
  | Async_write -> "async_write"
  | Delay -> "delay"
  | Boundary -> "boundary"
  | Write_io_error -> "write_io_error"
  | Unwritten -> "unwritten"
  | Quiet -> "quiet"
  | Meta -> "meta"
  | Prio -> "prio"
  | Defer_completion -> "defer_completion"

let flag_bit = function
  | Uptodate -> 0
  | Dirty -> 1
  | Lock -> 2
  | Req -> 3
  | Mapped -> 4
  | New -> 5
  | Async_read -> 6
  | Async_write -> 7
  | Delay -> 8
  | Boundary -> 9
  | Write_io_error -> 10
  | Unwritten -> 11
  | Quiet -> 12
  | Meta -> 13
  | Prio -> 14
  | Defer_completion -> 15

module Flags = struct
  type t = int

  let empty = 0
  let mem flag flags = flags land (1 lsl flag_bit flag) <> 0
  let add flag flags = flags lor (1 lsl flag_bit flag)
  let remove flag flags = flags land lnot (1 lsl flag_bit flag)
  let of_list = List.fold_left (fun acc f -> add f acc) empty
  let to_list flags = List.filter (fun f -> mem f flags) all_flags

  let pp ppf flags =
    Fmt.pf ppf "{%a}" (Fmt.list ~sep:(Fmt.any ",") Fmt.string)
      (List.map flag_to_string (to_list flags))
end

(* The validity rules.  Each is a named implication over the flag set. *)
type rule = {
  rule_name : string;
  violated_by : Flags.t -> bool;
}

let rules =
  let implies a b flags = not (Flags.mem a flags) || Flags.mem b flags in
  let excludes a b flags = not (Flags.mem a flags && Flags.mem b flags) in
  [
    { rule_name = "dirty-implies-uptodate"; violated_by = (fun f -> not (implies Dirty Uptodate f)) };
    { rule_name = "dirty-implies-mapped"; violated_by = (fun f -> not (implies Dirty Mapped f)) };
    { rule_name = "new-implies-mapped"; violated_by = (fun f -> not (implies New Mapped f)) };
    { rule_name = "async-read-under-lock"; violated_by = (fun f -> not (implies Async_read Lock f)) };
    { rule_name = "async-write-under-lock"; violated_by = (fun f -> not (implies Async_write Lock f)) };
    { rule_name = "async-read-excludes-write"; violated_by = (fun f -> not (excludes Async_read Async_write f)) };
    { rule_name = "unwritten-excludes-dirty"; violated_by = (fun f -> not (excludes Unwritten Dirty f)) };
    { rule_name = "delay-excludes-mapped"; violated_by = (fun f -> not (excludes Delay Mapped f)) };
    { rule_name = "write-error-excludes-dirty"; violated_by = (fun f -> not (excludes Write_io_error Dirty f)) };
    { rule_name = "boundary-implies-mapped"; violated_by = (fun f -> not (implies Boundary Mapped f)) };
    { rule_name = "meta-implies-mapped"; violated_by = (fun f -> not (implies Meta Mapped f)) };
    { rule_name = "prio-implies-meta"; violated_by = (fun f -> not (implies Prio Meta f)) };
  ]

let validate flags =
  List.filter_map (fun r -> if r.violated_by flags then Some r.rule_name else None) rules

(* The hot-path check: one branch-free boolean over the bitmask, used on
   every buffer transition.  [validate] (above) names the broken rules and
   is only consulted once a violation is already known. *)
let is_valid flags =
  let has f = Flags.mem f flags in
  let implies a b = (not a) || b in
  implies (has Dirty) (has Uptodate && has Mapped)
  && implies (has New) (has Mapped)
  && implies (has Async_read) (has Lock && not (has Async_write))
  && implies (has Async_write) (has Lock)
  && implies (has Unwritten) (not (has Dirty))
  && implies (has Delay) (not (has Mapped))
  && implies (has Write_io_error) (not (has Dirty))
  && implies (has Boundary) (has Mapped)
  && implies (has Meta) (has Mapped)
  && implies (has Prio) (has Meta)

(* Buffer heads and the cache ------------------------------------------- *)

type bh = {
  blkno : int;
  mutable flags : Flags.t;
  mutable data : bytes;
  mutable refcount : int;
}

exception Invalid_state of { blkno : int; broken : string list }

type t = {
  dev : Blockdev.t;
  table : (int, bh) Hashtbl.t;
  mutable state_checks : int;
  mutable state_violations : int;
  check_states : bool;
}

let create ?(check_states = true) dev =
  { dev; table = Hashtbl.create 64; state_checks = 0; state_violations = 0; check_states }

let check cache bh =
  if cache.check_states then begin
    cache.state_checks <- cache.state_checks + 1;
    if not (is_valid bh.flags) then begin
      cache.state_violations <- cache.state_violations + 1;
      raise (Invalid_state { blkno = bh.blkno; broken = validate bh.flags })
    end
  end

let getblk cache blkno =
  match Hashtbl.find_opt cache.table blkno with
  | Some bh ->
      bh.refcount <- bh.refcount + 1;
      bh
  | None ->
      let bh =
        {
          blkno;
          flags = Flags.of_list [ Mapped ];
          data = Bytes.make (Blockdev.block_size cache.dev) '\000';
          refcount = 1;
        }
      in
      Hashtbl.replace cache.table blkno bh;
      bh

let bread cache blkno =
  let bh = getblk cache blkno in
  if not (Flags.mem Uptodate bh.flags) then begin
    match Blockdev.read cache.dev blkno with
    | Ok data ->
        bh.data <- data;
        bh.flags <- Flags.add Uptodate bh.flags;
        check cache bh
    | Error _ ->
        bh.flags <- Flags.add Write_io_error bh.flags;
        check cache bh
  end;
  bh

let mark_dirty cache bh =
  if not (Flags.mem Uptodate bh.flags) then
    (* Setting Dirty on a non-uptodate buffer is precisely the kind of
       invalid combination the rules catch. *)
    bh.flags <- Flags.add Dirty bh.flags
  else bh.flags <- Flags.add Dirty (Flags.remove Write_io_error bh.flags);
  check cache bh

let set_data cache bh data =
  if Bytes.length data <> Blockdev.block_size cache.dev then invalid_arg "Buffer_head.set_data";
  bh.data <- Bytes.copy data;
  bh.flags <- Flags.add Uptodate bh.flags;
  mark_dirty cache bh

let brelse bh = bh.refcount <- max 0 (bh.refcount - 1)

let submit_write cache bh =
  check cache bh;
  if not (Flags.mem Dirty bh.flags) then Ok ()
  else begin
    bh.flags <- Flags.add Lock (Flags.add Async_write bh.flags);
    let result = Blockdev.write cache.dev bh.blkno bh.data in
    (match result with
    | Ok () -> bh.flags <- Flags.remove Dirty bh.flags
    | Error _ ->
        bh.flags <- Flags.add Write_io_error (Flags.remove Dirty bh.flags));
    bh.flags <- Flags.remove Lock (Flags.remove Async_write bh.flags);
    check cache bh;
    result
  end

let sync cache =
  let dirty =
    Hashtbl.fold (fun _ bh acc -> if Flags.mem Dirty bh.flags then bh :: acc else acc)
      cache.table []
    |> List.sort (fun a b -> compare a.blkno b.blkno)
  in
  List.iter (fun bh -> ignore (submit_write cache bh)) dirty;
  Blockdev.flush cache.dev

let dirty_count cache =
  Hashtbl.fold (fun _ bh n -> if Flags.mem Dirty bh.flags then n + 1 else n) cache.table 0

let cached_count cache = Hashtbl.length cache.table
let state_checks cache = cache.state_checks
let state_violations cache = cache.state_violations

let drop cache =
  (* Forget clean buffers; model memory pressure. *)
  let doomed =
    Hashtbl.fold
      (fun blkno bh acc ->
        if (not (Flags.mem Dirty bh.flags)) && bh.refcount = 0 then blkno :: acc else acc)
      cache.table []
  in
  List.iter (Hashtbl.remove cache.table) doomed;
  List.length doomed
