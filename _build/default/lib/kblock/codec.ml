(* Little helpers for serializing fixed-width integers and strings into
   block-sized byte buffers.  Used by the journal and the on-disk file
   systems. *)

let put_u32 buf off v =
  if v < 0 then invalid_arg "Codec.put_u32: negative";
  Bytes.set buf off (Char.chr (v land 0xff));
  Bytes.set buf (off + 1) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set buf (off + 2) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set buf (off + 3) (Char.chr ((v lsr 24) land 0xff))

let get_u32 buf off =
  Char.code (Bytes.get buf off)
  lor (Char.code (Bytes.get buf (off + 1)) lsl 8)
  lor (Char.code (Bytes.get buf (off + 2)) lsl 16)
  lor (Char.code (Bytes.get buf (off + 3)) lsl 24)

let put_u16 buf off v =
  if v < 0 || v > 0xffff then invalid_arg "Codec.put_u16";
  Bytes.set buf off (Char.chr (v land 0xff));
  Bytes.set buf (off + 1) (Char.chr ((v lsr 8) land 0xff))

let get_u16 buf off =
  Char.code (Bytes.get buf off) lor (Char.code (Bytes.get buf (off + 1)) lsl 8)

(* Length-prefixed short string (u16 length). *)
let put_string buf off s =
  let len = String.length s in
  put_u16 buf off len;
  Bytes.blit_string s 0 buf (off + 2) len;
  off + 2 + len

let get_string buf off =
  let len = get_u16 buf off in
  (Bytes.sub_string buf (off + 2) len, off + 2 + len)

(* Order-independent additive checksum, enough to detect torn journal
   records in the simulator. *)
let checksum data =
  let acc = ref 0 in
  Bytes.iter (fun c -> acc := (!acc + Char.code c + 1) land 0x3fffffff) data;
  !acc

let checksum_many datas = List.fold_left (fun acc d -> (acc + checksum d) land 0x3fffffff) 0 datas
