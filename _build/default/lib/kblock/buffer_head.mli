(** The buffer cache and the 16 [buffer_head] state flags.

    The paper's §4.4 case study: buffer_head "includes 16 state flags ...
    set independently, resulting in many possible combinations of states.
    Not all of the combinations are valid."  This module reproduces the 16
    flags, states the validity rules as code, and checks them on every
    transition — the English comment turned into a specification. *)

type flag =
  | Uptodate
  | Dirty
  | Lock
  | Req
  | Mapped
  | New
  | Async_read
  | Async_write
  | Delay
  | Boundary
  | Write_io_error
  | Unwritten
  | Quiet
  | Meta
  | Prio
  | Defer_completion

val all_flags : flag list
(** All 16, in bit order. *)

val flag_to_string : flag -> string

module Flags : sig
  type t
  (** A set of flags (bitmask). *)

  val empty : t
  val mem : flag -> t -> bool
  val add : flag -> t -> t
  val remove : flag -> t -> t
  val of_list : flag list -> t
  val to_list : t -> flag list
  val pp : Format.formatter -> t -> unit
end

val validate : Flags.t -> string list
(** Names of the validity rules the combination violates (empty = valid).
    Rules include dirty⇒uptodate, dirty⇒mapped, async_*⇒lock,
    unwritten excludes dirty, delay excludes mapped, prio⇒meta, … *)

val is_valid : Flags.t -> bool

type bh = private {
  blkno : int;
  mutable flags : Flags.t;
  mutable data : bytes;
  mutable refcount : int;
}

exception Invalid_state of { blkno : int; broken : string list }

type t
(** A buffer cache over a {!Blockdev.t}. *)

val create : ?check_states:bool -> Blockdev.t -> t
(** [check_states] (default true): validate flags on every transition and
    raise {!Invalid_state} on breach.  Benches ablate this. *)

val getblk : t -> int -> bh
(** Get or create the buffer for a block (no I/O); takes a reference. *)

val bread : t -> int -> bh
(** {!getblk} + read from the device if not uptodate. *)

val set_data : t -> bh -> bytes -> unit
(** Replace the buffer contents and mark dirty.  Whole blocks only. *)

val mark_dirty : t -> bh -> unit
val submit_write : t -> bh -> unit Ksim.Errno.r
(** Write one dirty buffer back (device cache; durable after flush). *)

val sync : t -> unit
(** Write back every dirty buffer in block order, then flush the device. *)

val brelse : bh -> unit
(** Drop a reference. *)

val drop : t -> int
(** Evict clean, unreferenced buffers; returns how many went. *)

val dirty_count : t -> int
val cached_count : t -> int
val state_checks : t -> int
val state_violations : t -> int
