lib/kblock/journal.mli: Blockdev Ksim
