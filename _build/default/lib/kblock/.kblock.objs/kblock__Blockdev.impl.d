lib/kblock/blockdev.ml: Array Bytes Digest Hashtbl Ksim Kspec List String
