lib/kblock/codec.mli:
