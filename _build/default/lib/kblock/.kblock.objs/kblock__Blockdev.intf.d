lib/kblock/blockdev.mli: Ksim Kspec
