lib/kblock/codec.ml: Bytes Char List String
