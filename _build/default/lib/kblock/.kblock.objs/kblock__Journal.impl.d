lib/kblock/journal.ml: Blockdev Bytes Codec Ksim List
