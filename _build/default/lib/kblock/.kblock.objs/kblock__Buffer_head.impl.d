lib/kblock/buffer_head.ml: Blockdev Bytes Fmt Hashtbl List
