lib/kblock/buffer_head.mli: Blockdev Format Ksim
