(** Fixed-width integer / string serialization into block buffers. *)

val put_u32 : bytes -> int -> int -> unit
val get_u32 : bytes -> int -> int
val put_u16 : bytes -> int -> int -> unit
val get_u16 : bytes -> int -> int

val put_string : bytes -> int -> string -> int
(** Write a u16-length-prefixed string; returns the offset past it. *)

val get_string : bytes -> int -> string * int
(** Read a u16-length-prefixed string; returns it and the offset past it. *)

val checksum : bytes -> int
(** Additive checksum used to detect torn journal records. *)

val checksum_many : bytes list -> int
