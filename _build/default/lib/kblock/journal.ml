(* A jbd2-style write-ahead journal.

   On-disk layout (within the owning device):

     block 0                : journal superblock (magic, checkpointed seq)
     blocks 1 .. jblocks-1  : journal records
     blocks jblocks ..      : the client's home area

   A transaction is recorded as

     [D seq count home0..home_{n-1}] [data]*n [C seq checksum]

   The commit protocol flushes the descriptor and data before the commit
   record, and the commit record before any home-location write, so a
   crash can only observe (a) no trace of the transaction or (b) a fully
   replayable one — never a torn in-place update.  Checkpointing applies
   committed transactions to their home locations and advances the
   checkpointed sequence number in the superblock. *)

let magic = 0x4a4c3231 (* "JL21" *)

type record_kind = Descriptor | Commit

type stats = {
  mutable commits : int;
  mutable checkpoints : int;
  mutable recoveries : int;
  mutable replayed_txs : int;
  mutable journal_block_writes : int;
}

type t = {
  dev : Blockdev.t;
  jblocks : int;
  mutable head : int; (* next free journal block; 1-based *)
  mutable next_seq : int;
  mutable checkpointed : int; (* highest seq applied to home locations *)
  mutable pending : tx list; (* committed, not yet checkpointed; oldest first *)
  stats : stats;
}

and tx = {
  mutable seq : int; (* assigned at commit *)
  mutable writes : (int * bytes) list; (* newest first; home blkno, data *)
  mutable committed : bool;
}

exception Journal_full

let data_start j = j.jblocks
let stats j = j.stats

let block_size j = Blockdev.block_size j.dev

let fresh_stats () =
  { commits = 0; checkpoints = 0; recoveries = 0; replayed_txs = 0; journal_block_writes = 0 }

(* Superblock ------------------------------------------------------------ *)

let write_jsb j =
  let buf = Bytes.make (block_size j) '\000' in
  Codec.put_u32 buf 0 magic;
  Codec.put_u32 buf 4 j.checkpointed;
  Codec.put_u32 buf 8 j.jblocks;
  match Blockdev.write j.dev 0 buf with
  | Ok () -> ()
  | Error e -> failwith ("journal superblock write: " ^ Ksim.Errno.to_string e)

let read_jsb dev =
  match Blockdev.read dev 0 with
  | Error _ -> None
  | Ok buf ->
      if Codec.get_u32 buf 0 = magic then Some (Codec.get_u32 buf 4, Codec.get_u32 buf 8)
      else None

(* Record encoding -------------------------------------------------------- *)

let encode_descriptor j ~seq homes =
  let buf = Bytes.make (block_size j) '\000' in
  Bytes.set buf 0 'D';
  Codec.put_u32 buf 1 seq;
  Codec.put_u32 buf 5 (List.length homes);
  List.iteri (fun i home -> Codec.put_u32 buf (9 + (4 * i)) home) homes;
  buf

let encode_commit j ~seq ~checksum =
  let buf = Bytes.make (block_size j) '\000' in
  Bytes.set buf 0 'C';
  Codec.put_u32 buf 1 seq;
  Codec.put_u32 buf 5 checksum;
  buf

let decode_record buf =
  if Bytes.length buf < 9 then None
  else
    match Bytes.get buf 0 with
    | 'D' ->
        let seq = Codec.get_u32 buf 1 in
        let count = Codec.get_u32 buf 5 in
        if count < 0 || count > (Bytes.length buf - 9) / 4 then None
        else
          let homes = List.init count (fun i -> Codec.get_u32 buf (9 + (4 * i))) in
          Some (Descriptor, seq, homes, 0)
    | 'C' -> Some (Commit, Codec.get_u32 buf 1, [], Codec.get_u32 buf 5)
    | _ -> None

let max_tx_writes j = (block_size j - 9) / 4

(* Formatting and opening ------------------------------------------------- *)

let format dev ~jblocks =
  if jblocks < 4 || jblocks >= Blockdev.nblocks dev then invalid_arg "Journal.format";
  let j =
    { dev; jblocks; head = 1; next_seq = 1; checkpointed = 0; pending = []; stats = fresh_stats () }
  in
  write_jsb j;
  (* Zero the journal area so stale records cannot be mistaken for live. *)
  let zero = Bytes.make (block_size j) '\000' in
  for blkno = 1 to jblocks - 1 do
    match Blockdev.write dev blkno zero with
    | Ok () -> ()
    | Error e -> failwith ("journal format: " ^ Ksim.Errno.to_string e)
  done;
  Blockdev.flush dev;
  j

(* Transactions ------------------------------------------------------------ *)

let tx_begin (_ : t) = { seq = 0; writes = []; committed = false }

let tx_write j tx ~blkno data =
  if blkno < j.jblocks || blkno >= Blockdev.nblocks j.dev then
    Error Ksim.Errno.EINVAL
  else if Bytes.length data <> block_size j then Error Ksim.Errno.EINVAL
  else begin
    (* Coalesce rewrites of the same block within a transaction. *)
    tx.writes <- (blkno, Bytes.copy data) :: List.remove_assoc blkno tx.writes;
    Ok ()
  end

let journal_write j blkno data =
  j.stats.journal_block_writes <- j.stats.journal_block_writes + 1;
  match Blockdev.write j.dev blkno data with
  | Ok () -> ()
  | Error e -> failwith ("journal write: " ^ Ksim.Errno.to_string e)

let space_needed tx = 2 + List.length tx.writes

(* Apply committed-but-unapplied transactions to their home locations. *)
let checkpoint j =
  match j.pending with
  | [] -> ()
  | pending ->
      List.iter
        (fun tx ->
          List.iter
            (fun (blkno, data) ->
              match Blockdev.write j.dev blkno data with
              | Ok () -> ()
              | Error e -> failwith ("checkpoint: " ^ Ksim.Errno.to_string e))
            (List.rev tx.writes);
          j.checkpointed <- max j.checkpointed tx.seq)
        pending;
      Blockdev.flush j.dev;
      write_jsb j;
      Blockdev.flush j.dev;
      j.pending <- [];
      j.head <- 1;
      j.stats.checkpoints <- j.stats.checkpoints + 1

let commit j tx =
  if tx.committed then invalid_arg "Journal.commit: already committed";
  if List.length tx.writes > max_tx_writes j then Error Ksim.Errno.EOVERFLOW
  else begin
    if j.head + space_needed tx > j.jblocks then checkpoint j;
    if j.head + space_needed tx > j.jblocks then raise Journal_full;
    let seq = j.next_seq in
    j.next_seq <- j.next_seq + 1;
    tx.seq <- seq;
    let writes = List.rev tx.writes (* oldest first *) in
    let homes = List.map fst writes in
    let datas = List.map snd writes in
    journal_write j j.head (encode_descriptor j ~seq homes);
    j.head <- j.head + 1;
    List.iter
      (fun data ->
        journal_write j j.head data;
        j.head <- j.head + 1)
      datas;
    (* Descriptor and data durable before the commit record... *)
    Blockdev.flush j.dev;
    journal_write j j.head (encode_commit j ~seq ~checksum:(Codec.checksum_many datas));
    j.head <- j.head + 1;
    (* ...and the commit record durable before any home write. *)
    Blockdev.flush j.dev;
    tx.committed <- true;
    j.pending <- j.pending @ [ tx ];
    j.stats.commits <- j.stats.commits + 1;
    Ok ()
  end

(* Recovery ---------------------------------------------------------------- *)

let scan_committed dev ~jblocks ~checkpointed =
  let read blkno =
    match Blockdev.read dev blkno with
    | Ok buf -> buf
    | Error e -> failwith ("journal scan: " ^ Ksim.Errno.to_string e)
  in
  let rec scan blkno acc =
    if blkno >= jblocks then List.rev acc
    else
      match decode_record (read blkno) with
      | Some (Descriptor, seq, homes, _) ->
          let count = List.length homes in
          if blkno + count + 1 >= jblocks then List.rev acc
          else
            let datas = List.init count (fun i -> read (blkno + 1 + i)) in
            let commit_blk = read (blkno + 1 + count) in
            (match decode_record commit_blk with
            | Some (Commit, cseq, _, checksum)
              when cseq = seq && checksum = Codec.checksum_many datas ->
                let tx_writes = List.combine homes datas in
                let acc = if seq > checkpointed then (seq, tx_writes) :: acc else acc in
                scan (blkno + count + 2) acc
            | _ ->
                (* Torn or missing commit: this and anything after is dead. *)
                List.rev acc)
      | Some (Commit, _, _, _) | None -> List.rev acc
  in
  scan 1 []

let recover dev ~jblocks =
  let checkpointed, jb =
    match read_jsb dev with
    | Some (cp, jb) -> (cp, jb)
    | None -> failwith "Journal.recover: no journal superblock"
  in
  if jb <> jblocks then failwith "Journal.recover: journal size mismatch";
  let committed = scan_committed dev ~jblocks ~checkpointed in
  let j =
    {
      dev;
      jblocks;
      head = 1;
      next_seq = 1 + List.fold_left (fun m (seq, _) -> max m seq) checkpointed committed;
      checkpointed;
      pending = [];
      stats = fresh_stats ();
    }
  in
  j.stats.recoveries <- 1;
  List.iter
    (fun (seq, writes) ->
      j.stats.replayed_txs <- j.stats.replayed_txs + 1;
      List.iter
        (fun (blkno, data) ->
          match Blockdev.write dev blkno data with
          | Ok () -> ()
          | Error e -> failwith ("journal replay: " ^ Ksim.Errno.to_string e))
        writes;
      j.checkpointed <- max j.checkpointed seq)
    committed;
  Blockdev.flush dev;
  write_jsb j;
  Blockdev.flush dev;
  j

let tx_size tx = List.length tx.writes
let pending_txs j = List.length j.pending
let checkpointed_seq j = j.checkpointed
