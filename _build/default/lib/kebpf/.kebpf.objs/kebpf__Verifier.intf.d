lib/kebpf/verifier.mli: Format Insn
