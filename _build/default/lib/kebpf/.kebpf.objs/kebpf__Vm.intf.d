lib/kebpf/vm.mli: Insn Verifier
