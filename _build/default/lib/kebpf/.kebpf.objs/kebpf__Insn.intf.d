lib/kebpf/insn.mli: Format
