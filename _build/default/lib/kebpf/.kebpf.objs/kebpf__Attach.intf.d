lib/kebpf/attach.mli: Insn Kspec Verifier
