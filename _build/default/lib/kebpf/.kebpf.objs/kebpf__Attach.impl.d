lib/kebpf/attach.ml: Array Buffer Char Insn Kspec List Result String Vm
