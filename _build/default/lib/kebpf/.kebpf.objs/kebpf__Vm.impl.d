lib/kebpf/vm.ml: Array Char Insn Printf String Verifier
