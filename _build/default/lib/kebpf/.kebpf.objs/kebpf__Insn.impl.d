lib/kebpf/insn.ml: Array Fmt Printf
