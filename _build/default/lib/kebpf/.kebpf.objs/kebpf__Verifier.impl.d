lib/kebpf/verifier.ml: Array Fmt Insn Printf
