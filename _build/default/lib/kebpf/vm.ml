(* The extension VM.

   Runs only verifier-approved programs ([load] couples the two), over a
   read-only context buffer.  Even then it is defensive: context loads are
   bounds-trapped, division by zero traps, and a fuel counter (which a
   verified program can never exhaust, since jumps only go forward) caps
   execution — traps return an error to the kernel instead of becoming
   kernel bugs, which is the whole point of the mechanism. *)

type trap =
  | Ctx_out_of_bounds of { pc : int; offset : int; len : int }
  | Division_by_zero of { pc : int }
  | Fuel_exhausted

let trap_to_string = function
  | Ctx_out_of_bounds { pc; offset; len } ->
      Printf.sprintf "ctx access at pc=%d: offset %d beyond length %d" pc offset len
  | Division_by_zero { pc } -> Printf.sprintf "division by zero at pc=%d" pc
  | Fuel_exhausted -> "fuel exhausted"

type loaded = {
  prog : Insn.program;
  mutable runs : int;
  mutable insns_executed : int;
}

let load prog =
  match Verifier.check prog with
  | Ok () -> Ok { prog; runs = 0; insns_executed = 0 }
  | Error r -> Error r

let stats loaded = (loaded.runs, loaded.insns_executed)

let exec loaded ~ctx : (int, trap) result =
  let prog = loaded.prog in
  let n = Array.length prog in
  let len = String.length ctx in
  let regs = Array.make 8 0 in
  regs.(Insn.reg_index Insn.R1) <- len;
  loaded.runs <- loaded.runs + 1;
  let get r = regs.(Insn.reg_index r) in
  let set r v = regs.(Insn.reg_index r) <- v in
  let alu op a b ~pc =
    match op with
    | Insn.Add -> Ok (a + b)
    | Insn.Sub -> Ok (a - b)
    | Insn.Mul -> Ok (a * b)
    | Insn.Div -> if b = 0 then Error (Division_by_zero { pc }) else Ok (a / b)
    | Insn.And -> Ok (a land b)
    | Insn.Or -> Ok (a lor b)
    | Insn.Xor -> Ok (a lxor b)
    | Insn.Lsh -> Ok (a lsl (b land 62))
    | Insn.Rsh -> Ok (a lsr (b land 62))
  in
  let cond c a b =
    match c with
    | Insn.Eq -> a = b
    | Insn.Ne -> a <> b
    | Insn.Lt -> a < b
    | Insn.Gt -> a > b
    | Insn.Le -> a <= b
    | Insn.Ge -> a >= b
  in
  let rec step pc fuel =
    if fuel = 0 then Error Fuel_exhausted
    else if pc >= n then Error Fuel_exhausted (* cannot happen post-verification *)
    else begin
      loaded.insns_executed <- loaded.insns_executed + 1;
      match prog.(pc) with
      | Insn.Mov_imm (d, imm) ->
          set d imm;
          step (pc + 1) (fuel - 1)
      | Insn.Mov_reg (d, s) ->
          set d (get s);
          step (pc + 1) (fuel - 1)
      | Insn.Alu_imm (op, d, imm) -> (
          match alu op (get d) imm ~pc with
          | Ok v ->
              set d v;
              step (pc + 1) (fuel - 1)
          | Error trap -> Error trap)
      | Insn.Alu_reg (op, d, s) -> (
          match alu op (get d) (get s) ~pc with
          | Ok v ->
              set d v;
              step (pc + 1) (fuel - 1)
          | Error trap -> Error trap)
      | Insn.Ld_ctx (d, s, imm) ->
          let offset = get s + imm in
          if offset < 0 || offset >= len then Error (Ctx_out_of_bounds { pc; offset; len })
          else begin
            set d (Char.code ctx.[offset]);
            step (pc + 1) (fuel - 1)
          end
      | Insn.Jmp off -> step (pc + 1 + off) (fuel - 1)
      | Insn.Jcond (c, r, imm, off) ->
          if cond c (get r) imm then step (pc + 1 + off) (fuel - 1)
          else step (pc + 1) (fuel - 1)
      | Insn.Exit -> Ok (get Insn.R0)
    end
  in
  step 0 (n + 1)
