(* The static verifier: programs are checked before they may attach.

   Guarantees established here, once, for every run:

   - termination: all jumps are strictly forward, so execution visits each
     instruction at most once (fuel in the VM is a belt-and-braces bound);
   - no fallthrough off the end: every path ends in [Exit];
   - no reads of uninitialized registers: a forward abstract
     interpretation tracks definitely-initialized registers, intersecting
     at join points (sound because the CFG of a forward-jump program is a
     DAG processed in order);
   - bounded context access: [Ld_ctx] offsets are bounds-trapped at run
     time, and the verifier bounds the immediate so a trap, not a wild
     read, is the worst case.

   These are the checks that make the extension point safe, and the
   forward-jump restriction is exactly the expressiveness ceiling the
   paper contrasts with full module replacement. *)

type rejection = {
  at : int; (* instruction index; -1 for whole-program problems *)
  reason : string;
}

let pp_rejection ppf r =
  if r.at < 0 then Fmt.pf ppf "program rejected: %s" r.reason
  else Fmt.pf ppf "instruction %d rejected: %s" r.at r.reason

let max_insns = 4096
let max_ctx_imm = 65536

module Regset = struct
  type t = int (* bitmask over the 8 registers *)

  let empty = 0
  let add r s = s lor (1 lsl Insn.reg_index r)
  let mem r s = s land (1 lsl Insn.reg_index r) <> 0
  let inter = ( land )
end

let check (prog : Insn.program) : (unit, rejection) result =
  let n = Array.length prog in
  if n = 0 then Error { at = -1; reason = "empty program" }
  else if n > max_insns then Error { at = -1; reason = "program too long" }
  else begin
    (* init.(i) = Some s: instruction i is reachable with at least the
       registers in s initialized (intersection over all paths). *)
    let init : Regset.t option array = Array.make (n + 1) None in
    (* On entry r1 holds the context length. *)
    init.(0) <- Some (Regset.add Insn.R1 Regset.empty);
    let merge idx s =
      if idx <= n then
        init.(idx) <-
          (match init.(idx) with None -> Some s | Some old -> Some (Regset.inter old s))
    in
    let error = ref None in
    let reject at reason = if !error = None then error := Some { at; reason } in
    for i = 0 to n - 1 do
      match init.(i) with
      | None -> () (* unreachable: ignored, like dead code *)
      | Some s -> (
          let need r =
            if not (Regset.mem r s) then
              reject i (Printf.sprintf "read of uninitialized %s" (Insn.reg_to_string r))
          in
          let fall s' = merge (i + 1) s' in
          match prog.(i) with
          | Insn.Mov_imm (d, _) -> fall (Regset.add d s)
          | Insn.Mov_reg (d, src) ->
              need src;
              fall (Regset.add d s)
          | Insn.Alu_imm (op, d, imm) ->
              need d;
              if op = Insn.Div && imm = 0 then reject i "division by constant zero";
              if (op = Insn.Lsh || op = Insn.Rsh) && (imm < 0 || imm > 62) then
                reject i "shift amount out of range";
              fall s
          | Insn.Alu_reg (_, d, src) ->
              need d;
              need src;
              fall s
          | Insn.Ld_ctx (d, src, imm) ->
              need src;
              if imm < 0 || imm > max_ctx_imm then reject i "context offset immediate out of range";
              fall (Regset.add d s)
          | Insn.Jmp off ->
              if off < 0 then reject i "backward jump"
              else if i + 1 + off > n then reject i "jump out of bounds"
              else merge (i + 1 + off) s
          | Insn.Jcond (_, r, _, off) ->
              need r;
              if off < 0 then reject i "backward jump"
              else if i + 1 + off > n then reject i "jump out of bounds"
              else begin
                merge (i + 1 + off) s;
                fall s
              end
          | Insn.Exit -> need Insn.R0)
    done;
    (* No instruction may fall through past the end. *)
    (match init.(n) with
    | Some _ -> reject (n - 1) "control may fall off the end of the program"
    | None -> ());
    match !error with None -> Ok () | Some r -> Error r
  end

(* The headline expressiveness limit, as an executable statement: the
   number of instructions a verified program can execute is bounded by its
   length, so any computation needing an input-dependent number of steps
   (a directory walk, a retransmit loop, a file system) cannot be
   expressed.  [max_trip_count] returns that static bound. *)
let max_trip_count prog = Array.length prog
