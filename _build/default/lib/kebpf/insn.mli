(** Instruction set of the in-kernel extension VM — a miniature of eBPF's
    expressiveness trade-off: forward-only jumps mean every verified
    program terminates, and also that no complex kernel component can be
    written in it (the paper's related-work contrast). *)

type reg =
  | R0  (** return value *)
  | R1  (** context length on entry *)
  | R2
  | R3
  | R4
  | R5
  | R6
  | R7

val all_regs : reg list
val reg_index : reg -> int
val reg_to_string : reg -> string

type alu =
  | Add
  | Sub
  | Mul
  | Div  (** traps on zero divisor *)
  | And
  | Or
  | Xor
  | Lsh
  | Rsh

type cond =
  | Eq
  | Ne
  | Lt
  | Gt
  | Le
  | Ge

type t =
  | Mov_imm of reg * int
  | Mov_reg of reg * reg
  | Alu_imm of alu * reg * int
  | Alu_reg of alu * reg * reg
  | Ld_ctx of reg * reg * int
      (** load one byte of the context buffer at \[src + imm\] *)
  | Jmp of int  (** relative, forward only *)
  | Jcond of cond * reg * int * int  (** compare register to immediate *)
  | Exit

type program = t array

val pp : Format.formatter -> t -> unit
val pp_program : Format.formatter -> program -> unit
