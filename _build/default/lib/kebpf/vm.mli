(** The extension VM: runs only verifier-approved programs over a
    read-only context buffer; every remaining hazard (out-of-bounds
    context access, division by zero) traps back to the kernel as an
    error instead of corrupting it. *)

type trap =
  | Ctx_out_of_bounds of { pc : int; offset : int; len : int }
  | Division_by_zero of { pc : int }
  | Fuel_exhausted  (** unreachable for verified programs *)

val trap_to_string : trap -> string

type loaded
(** A program that passed the verifier. *)

val load : Insn.program -> (loaded, Verifier.rejection) result

val exec : loaded -> ctx:string -> (int, trap) result
(** Run over a context buffer; returns r0. *)

val stats : loaded -> int * int
(** (runs, total instructions executed). *)
