(* The instruction set of the in-kernel extension VM.

   Related work: "Today, Linux already supports loading eBPF, but its
   expressiveness is limited, and it does not support complex kernel
   components."  This is a faithful miniature of that trade-off: a small
   register machine whose programs are statically verified before loading
   (see [Verifier]) — jumps go forward only, so every verified program
   terminates, which is precisely why no file system or TCP stack can be
   written in it. *)

type reg =
  | R0 (* return value *)
  | R1 (* context length on entry *)
  | R2
  | R3
  | R4
  | R5
  | R6
  | R7

let all_regs = [ R0; R1; R2; R3; R4; R5; R6; R7 ]
let reg_index = function R0 -> 0 | R1 -> 1 | R2 -> 2 | R3 -> 3 | R4 -> 4 | R5 -> 5 | R6 -> 6 | R7 -> 7

let reg_to_string r = Printf.sprintf "r%d" (reg_index r)

type alu =
  | Add
  | Sub
  | Mul
  | Div (* traps on zero divisor at run time *)
  | And
  | Or
  | Xor
  | Lsh
  | Rsh

let alu_to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Lsh -> "lsh"
  | Rsh -> "rsh"

type cond =
  | Eq
  | Ne
  | Lt
  | Gt
  | Le
  | Ge

let cond_to_string = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Gt -> "gt"
  | Le -> "le"
  | Ge -> "ge"

type t =
  | Mov_imm of reg * int  (** dst := imm *)
  | Mov_reg of reg * reg  (** dst := src *)
  | Alu_imm of alu * reg * int  (** dst := dst op imm *)
  | Alu_reg of alu * reg * reg  (** dst := dst op src *)
  | Ld_ctx of reg * reg * int
      (** dst := ctx\[src + imm\]  (one byte; bounds-trapped at run time) *)
  | Jmp of int  (** pc += 1 + offset; verifier requires offset >= 0 *)
  | Jcond of cond * reg * int * int
      (** if (reg cond imm) pc += 1 + offset; offset >= 0 *)
  | Exit  (** return r0 *)

let pp ppf = function
  | Mov_imm (d, i) -> Fmt.pf ppf "mov %s, %d" (reg_to_string d) i
  | Mov_reg (d, s) -> Fmt.pf ppf "mov %s, %s" (reg_to_string d) (reg_to_string s)
  | Alu_imm (op, d, i) -> Fmt.pf ppf "%s %s, %d" (alu_to_string op) (reg_to_string d) i
  | Alu_reg (op, d, s) ->
      Fmt.pf ppf "%s %s, %s" (alu_to_string op) (reg_to_string d) (reg_to_string s)
  | Ld_ctx (d, s, i) -> Fmt.pf ppf "ldb %s, ctx[%s+%d]" (reg_to_string d) (reg_to_string s) i
  | Jmp off -> Fmt.pf ppf "jmp +%d" off
  | Jcond (c, r, i, off) ->
      Fmt.pf ppf "j%s %s, %d, +%d" (cond_to_string c) (reg_to_string r) i off
  | Exit -> Fmt.string ppf "exit"

type program = t array

let pp_program ppf prog =
  Array.iteri (fun i insn -> Fmt.pf ppf "%3d: %a@." i pp insn) prog
