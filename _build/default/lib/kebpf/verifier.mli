(** The static verifier run before a program may attach.

    Establishes termination (forward-only jumps), no fall-through off the
    end, no uninitialized-register reads (forward abstract interpretation
    with intersection at joins), and bounded context offsets.  The
    forward-jump restriction is the expressiveness ceiling the paper
    contrasts with full module replacement. *)

type rejection = {
  at : int;  (** instruction index; [-1] for whole-program problems *)
  reason : string;
}

val pp_rejection : Format.formatter -> rejection -> unit

val max_insns : int

val check : Insn.program -> (unit, rejection) result

val max_trip_count : Insn.program -> int
(** Static bound on executed instructions — the executable form of "its
    expressiveness is limited". *)
