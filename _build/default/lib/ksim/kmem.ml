(* Simulated manual kernel allocator.

   Objects live in a heap that tracks their lifecycle so that the classic C
   memory bugs — use-after-free, double-free, leaks — are observable events
   rather than silent corruption.  Unsafe modules (roadmap step 0/1) manage
   object lifetimes through this allocator; ownership-safe modules (step 3)
   route the same allocations through capability checks in [Ownership]. *)

exception Use_after_free of { site : string; id : int }
exception Double_free of { site : string; id : int }

type 'a state =
  | Live of 'a
  | Freed

type 'a ptr = {
  id : int;
  site : string;
  mutable state : 'a state;
  heap : t;
}

and t = {
  name : string;
  mutable next_id : int;
  mutable allocated : int;
  mutable freed : int;
  mutable uaf_events : int;
  mutable double_free_events : int;
  live : (int, string) Hashtbl.t; (* id -> allocation site, for leak reports *)
  strict : bool; (* raise on violation instead of just counting *)
}

let create ?(strict = true) ~name () =
  {
    name;
    next_id = 0;
    allocated = 0;
    freed = 0;
    uaf_events = 0;
    double_free_events = 0;
    live = Hashtbl.create 64;
    strict;
  }

let alloc heap ~site value =
  heap.next_id <- heap.next_id + 1;
  heap.allocated <- heap.allocated + 1;
  let id = heap.next_id in
  Hashtbl.replace heap.live id site;
  { id; site; state = Live value; heap }

let use_after_free ptr =
  ptr.heap.uaf_events <- ptr.heap.uaf_events + 1;
  if ptr.heap.strict then raise (Use_after_free { site = ptr.site; id = ptr.id })

let read ptr =
  match ptr.state with
  | Live v -> v
  | Freed ->
      use_after_free ptr;
      (* Non-strict mode models "reading freed memory returns garbage" by
         failing anyway: there is no garbage value of type ['a] to hand
         back, so even a lenient heap cannot continue past a read. *)
      raise (Use_after_free { site = ptr.site; id = ptr.id })

let write ptr value =
  match ptr.state with
  | Live _ -> ptr.state <- Live value
  | Freed -> use_after_free ptr

let free ptr =
  match ptr.state with
  | Live _ ->
      ptr.state <- Freed;
      ptr.heap.freed <- ptr.heap.freed + 1;
      Hashtbl.remove ptr.heap.live ptr.id
  | Freed ->
      ptr.heap.double_free_events <- ptr.heap.double_free_events + 1;
      if ptr.heap.strict then raise (Double_free { site = ptr.site; id = ptr.id })

let is_live ptr = match ptr.state with Live _ -> true | Freed -> false
let live_count heap = Hashtbl.length heap.live
let allocated heap = heap.allocated
let freed heap = heap.freed
let uaf_events heap = heap.uaf_events
let double_free_events heap = heap.double_free_events

type leak = { leak_id : int; leak_site : string }

let leaks heap =
  Hashtbl.fold (fun leak_id leak_site acc -> { leak_id; leak_site } :: acc) heap.live []
  |> List.sort (fun a b -> compare a.leak_id b.leak_id)

let pp_report ppf heap =
  Fmt.pf ppf "heap %s: allocated=%d freed=%d live=%d uaf=%d double_free=%d" heap.name
    heap.allocated heap.freed (live_count heap) heap.uaf_events heap.double_free_events
