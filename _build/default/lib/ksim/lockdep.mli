(** Lock-order validation in the spirit of the kernel's lockdep.

    Records the acquired-while-holding graph across all threads and
    reports a potential deadlock the moment an acquisition would close a
    cycle — on the first run of any interleaving, not only the unlucky
    one that actually deadlocks. *)

type warning = {
  tid : int;
  acquiring : string;
  cycle : string list;  (** the inverted order, ending back at [acquiring] *)
}

val pp_warning : Format.formatter -> warning -> unit

type t

val create : ?trace:Ktrace.t -> unit -> t

val lock_acquired : t -> name:string -> unit
(** Called by {!Klock.acquire} after taking the lock: records edges from
    every lock the current thread holds and checks for order inversions. *)

val lock_released : t -> name:string -> unit

val warnings : t -> warning list
val warning_count : t -> int
val edge_count : t -> int

val global : t
(** The process-wide instance, mirroring the kernel's single lockdep. *)
