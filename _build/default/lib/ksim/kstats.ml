(* Named counters, used by benches and the audit tooling. *)

type t = (string, int ref) Hashtbl.t

let create () : t = Hashtbl.create 16

let counter t name =
  match Hashtbl.find_opt t name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.replace t name r;
      r

let incr ?(by = 1) t name =
  let r = counter t name in
  r := !r + by

let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0

let to_list t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset t = Hashtbl.reset t

let pp ppf t =
  List.iter (fun (name, v) -> Fmt.pf ppf "%-32s %d@." name v) (to_list t)
