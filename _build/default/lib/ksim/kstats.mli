(** Named monotonic counters for instrumentation and audits. *)

type t

val create : unit -> t
val incr : ?by:int -> t -> string -> unit
val get : t -> string -> int
(** 0 for counters never incremented. *)

val to_list : t -> (string * int) list
(** All counters, sorted by name. *)

val reset : t -> unit
val pp : Format.formatter -> t -> unit
