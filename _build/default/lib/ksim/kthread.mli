(** Deterministic cooperative scheduler (OCaml 5 effect handlers).

    Simulated kernel threads yield explicitly; the scheduler interleaves
    them round-robin or by a seeded RNG, making concurrency bugs exactly
    reproducible.  Blocking primitives ({!Klock.acquire}) spin by yielding,
    so a lost wakeup shows up as a {!Livelock} rather than a hang. *)

type t
(** A scheduler instance. *)

type failure = {
  failed_tid : int;
  failed_name : string;
  exn : exn;
}

exception Livelock of { steps : int }
(** Raised by {!run} when the step budget is exhausted — e.g. all threads
    spin on a lock whose holder never releases it. *)

exception Not_in_scheduler

val create : ?seed:int -> ?max_steps:int -> unit -> t
(** [create ()] schedules round-robin; [create ~seed ()] picks the next
    runnable thread with a SplitMix64 stream, exploring one deterministic
    interleaving per seed.  [max_steps] (default 1,000,000) bounds the total
    number of scheduling steps. *)

val spawn : t -> name:string -> (unit -> unit) -> int
(** Register a thread; returns its tid (>= 1).  Threads run only inside
    {!run}. *)

val run : t -> unit
(** Run until every thread finished (or failed).  Thread exceptions are
    collected in {!failures}, not re-raised. *)

val yield : unit -> unit
(** Cooperative scheduling point.  A no-op outside a scheduler. *)

val self : unit -> int
(** Tid of the running thread; [0] outside any scheduler. *)

val failures : t -> failure list
(** Threads that terminated with an exception, in spawn-completion order. *)

val steps : t -> int
(** Scheduling steps consumed by the last {!run}. *)

val explore :
  ?seeds:int ->
  spawn_all:(t -> unit) ->
  observe:(failure list -> 'a) ->
  unit ->
  ('a * int) list
(** Run the same concurrent program under [seeds] (default 32) seeded
    schedules and tally the distinct outcomes [observe] extracts.  A
    single outcome means the program is insensitive to interleaving; more
    than one exhibits a race. *)
