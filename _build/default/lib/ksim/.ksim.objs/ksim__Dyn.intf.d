lib/ksim/dyn.mli: Errno Format
