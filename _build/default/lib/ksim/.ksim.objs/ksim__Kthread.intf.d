lib/ksim/kthread.mli:
