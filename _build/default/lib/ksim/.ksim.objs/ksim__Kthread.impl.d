lib/ksim/kthread.ml: Effect Hashtbl List Option Rng
