lib/ksim/klock.mli: Ktrace Lockdep
