lib/ksim/kmem.mli: Format
