lib/ksim/lockdep.mli: Format Ktrace
