lib/ksim/dyn.ml: Errno Fmt
