lib/ksim/rng.mli:
