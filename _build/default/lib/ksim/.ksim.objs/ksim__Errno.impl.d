lib/ksim/errno.ml: Fmt List Result
