lib/ksim/ktrace.ml: Fmt List Queue String
