lib/ksim/ktrace.mli: Format
