lib/ksim/lockdep.ml: Fmt Hashtbl Kthread Ktrace List String
