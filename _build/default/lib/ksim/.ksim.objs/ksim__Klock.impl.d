lib/ksim/klock.ml: Kthread Ktrace Lockdep Option
