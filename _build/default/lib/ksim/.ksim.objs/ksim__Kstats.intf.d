lib/ksim/kstats.mli: Format
