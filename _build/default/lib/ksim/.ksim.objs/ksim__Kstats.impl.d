lib/ksim/kstats.ml: Fmt Hashtbl List String
