lib/ksim/kmem.ml: Fmt Hashtbl List
