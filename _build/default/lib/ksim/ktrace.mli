(** Bounded in-memory event trace — the simulator's [dmesg].

    Safety checkers record violations here so that tests and the analysis
    harness can observe them without relying on exceptions. *)

type event = {
  seq : int;  (** monotonically increasing sequence number *)
  category : string;  (** e.g. ["race"], ["uaf"], ["journal"] *)
  message : string;
}

type t

val create : ?capacity:int -> unit -> t
(** Ring of at most [capacity] (default 4096) most recent events. *)

val emit : t -> category:string -> string -> unit
val emitf : t -> category:string -> ('a, Format.formatter, unit, unit) format4 -> 'a

val events : t -> event list
(** Retained events, oldest first. *)

val count : t -> category:string -> int
(** Number of retained events in [category]. *)

val total : t -> int
(** Number of events ever emitted (including evicted ones). *)

val clear : t -> unit
val pp_event : Format.formatter -> event -> unit

val global : t
(** Shared default trace used when a component is not given its own. *)
