(** Dynamically typed values simulating C [void *] payloads.

    Linux interfaces (e.g. VFS [write_begin]/[write_end], socket protocol
    private data) pass custom data as void pointers and rely on the callee
    casting them back.  [Dyn] reproduces the idiom: values are injected
    under a typed {!Key.t} and recovered either with the checked
    {!project} or the "C-style" {!cast_exn}, which raises
    {!Type_confusion} on mismatch — the runtime analogue of dereferencing a
    wrongly cast pointer (cf. CVE-2020-12351 discussed in the paper). *)

exception
  Type_confusion of {
    expected : string;  (** the key name the caller asked to cast to *)
    actual : string;  (** the key name the value was injected under *)
  }

exception Null_dereference
(** Raised when dereferencing {!null} or an error pointer. *)

module Key : sig
  type 'a t
  (** A type witness naming one kind of private data. *)

  val create : name:string -> 'a t
  (** [create ~name] mints a fresh key.  Two keys never compare equal, even
      with the same [name]. *)

  val name : 'a t -> string
  val uid : 'a t -> int
end

type t
(** A dynamically typed value ("void pointer"). *)

val null : t
val is_null : t -> bool

val inject : 'a Key.t -> 'a -> t
(** [inject key v] wraps [v] as an untyped value tagged by [key]. *)

val project : 'a Key.t -> t -> 'a option
(** Checked downcast: [None] on tag mismatch or null. *)

val cast_exn : 'a Key.t -> t -> 'a
(** Unchecked "C-style" downcast.
    @raise Type_confusion on tag mismatch.
    @raise Null_dereference on {!null}. *)

val tag_name : t -> string
(** Name of the key the value was injected under (["NULL"] for null). *)

(** Kernel error-pointer convention ([ERR_PTR]/[PTR_ERR]/[IS_ERR]): a
    function returns either a pointer or an error encoded in pointer space,
    and the caller must remember to check. *)
module Errptr : sig
  type dyn := t

  type t =
    | Ptr of dyn
    | Err of Errno.t

  val of_ptr : dyn -> t
  val of_err : Errno.t -> t

  val is_err : t -> bool
  (** [IS_ERR]: true when the value encodes an error. *)

  val ptr_err : t -> int
  (** [PTR_ERR]: the errno number hidden in the pointer (0 for real
      pointers).  Like in C, calling this on a valid pointer is a caller
      bug that yields a meaningless value rather than an exception. *)

  val deref : t -> dyn
  (** Dereference.  @raise Null_dereference when applied to an error
      pointer — the simulated kernel oops. *)

  val to_result : t -> dyn Errno.r
  (** The safe decoding used by post-step-2 (type-safe) modules. *)

  val pp : Format.formatter -> t -> unit
end
