(* Dynamically typed values simulating C [void *] payloads.

   Linux interfaces such as VFS [write_begin]/[write_end] pass private data
   as void pointers and rely on the callee casting them back to the right
   type.  [Dyn] reproduces that idiom: a value is injected under a [Key] and
   can be projected back either checked ([project]) or "C-style"
   ([cast_exn]), which raises {!Type_confusion} on mismatch -- the runtime
   analogue of dereferencing a wrongly cast pointer. *)

exception
  Type_confusion of {
    expected : string;
    actual : string;
  }

exception Null_dereference

module Key = struct
  type 'a witness = ..

  module type S = sig
    type a
    type 'a witness += W : a witness
    val name : string
    val uid : int
  end

  type 'a t = (module S with type a = 'a)

  let next_uid = ref 0

  let create (type v) ~name : v t =
    incr next_uid;
    let uid = !next_uid in
    let module M = struct
      type a = v
      type 'a witness += W : a witness
      let name = name
      let uid = uid
    end in
    (module M)

  let name (type v) ((module M) : v t) = M.name
  let uid (type v) ((module M) : v t) = M.uid
end

type t =
  | Null
  | Value : {
      key : 'a Key.t;
      value : 'a;
    }
      -> t

let null = Null

let is_null = function Null -> true | Value _ -> false

let inject key value = Value { key; value }

let tag_name = function
  | Null -> "NULL"
  | Value { key; _ } -> Key.name key

let project : type v. v Key.t -> t -> v option =
 fun (module M) dyn ->
  match dyn with
  | Null -> None
  | Value { key = (module K); value } -> (
      match K.W with M.W -> Some value | _ -> None)

let cast_exn : type v. v Key.t -> t -> v =
 fun ((module M) as key) dyn ->
  match dyn with
  | Null -> raise Null_dereference
  | Value { key = (module K); value } -> (
      match K.W with
      | M.W -> value
      | _ ->
          raise
            (Type_confusion { expected = Key.name key; actual = Key.name (module K) }))

module Errptr = struct
  (* The kernel encodes errors into pointer values: addresses in the last
     page ([-MAX_ERRNO..-1] as unsigned) are error codes, everything else is
     a valid pointer.  We mirror the convention with a sum that the "C"
     caller must remember to check via [is_err]. *)

  type nonrec t =
    | Ptr of t
    | Err of Errno.t

  let of_ptr dyn = Ptr dyn
  let of_err e = Err e
  let is_err = function Err _ -> true | Ptr _ -> false

  let ptr_err = function
    | Err e -> Errno.to_code e
    | Ptr _ -> 0

  let deref = function
    | Ptr dyn -> dyn
    | Err _ ->
        (* Dereferencing an error pointer is the classic kernel oops. *)
        raise Null_dereference

  let to_result = function
    | Ptr dyn -> Ok dyn
    | Err e -> Error e

  let pp ppf = function
    | Ptr dyn -> Fmt.pf ppf "ptr<%s>" (tag_name dyn)
    | Err e -> Fmt.pf ppf "ERR_PTR(-%d /* %a */)" (Errno.to_code e) Errno.pp e
end
