(* Bounded in-memory event trace, the simulator's dmesg.  Checkers record
   violations here so tests can assert on them without exceptions. *)

type event = {
  seq : int;
  category : string;
  message : string;
}

type t = {
  capacity : int;
  buf : event Queue.t;
  mutable next_seq : int;
}

let create ?(capacity = 4096) () = { capacity; buf = Queue.create (); next_seq = 0 }

let emit t ~category message =
  let seq = t.next_seq in
  t.next_seq <- t.next_seq + 1;
  Queue.push { seq; category; message } t.buf;
  if Queue.length t.buf > t.capacity then ignore (Queue.pop t.buf)

let emitf t ~category fmt = Fmt.kstr (fun msg -> emit t ~category msg) fmt

let events t = List.of_seq (Queue.to_seq t.buf)

let count t ~category =
  Queue.fold (fun n e -> if String.equal e.category category then n + 1 else n) 0 t.buf

let total t = t.next_seq

let clear t =
  Queue.clear t.buf;
  t.next_seq <- 0

let pp_event ppf e = Fmt.pf ppf "[%6d] %-12s %s" e.seq e.category e.message

let global = create ~capacity:16384 ()
