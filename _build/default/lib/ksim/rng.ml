(* SplitMix64: tiny, deterministic, splittable PRNG.  Every randomized
   component of the simulator takes an explicit [Rng.t] so that runs are
   reproducible from a seed. *)

type t = { mutable state : int64 }

let create seed = { state = seed }
let of_int seed = create (Int64.of_int seed)

let golden = 0x9E3779B97F4A7C15L

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value always fits OCaml's 63-bit int positively. *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let bool t = Int64.logand (next t) 1L = 1L

let float t =
  (* 53 random bits scaled into [0, 1). *)
  let bits = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  bits /. 9007199254740992.0

let split t = create (next t)

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let shuffle t xs =
  let arr = Array.of_list xs in
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (Char.chr (int t 256))
  done;
  b
