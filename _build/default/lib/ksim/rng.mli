(** SplitMix64 deterministic PRNG.

    Every randomized component of the simulator takes an explicit [Rng.t]
    so runs are exactly reproducible from a seed ([Date.now]-free). *)

type t

val create : int64 -> t
val of_int : int -> t

val next : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val bool : t -> bool
val float : t -> float
(** Uniform in [\[0, 1)]. *)

val split : t -> t
(** An independent generator derived from [t]'s stream. *)

val pick : t -> 'a list -> 'a
(** Uniform choice.  @raise Invalid_argument on the empty list. *)

val shuffle : t -> 'a list -> 'a list
val bytes : t -> int -> bytes
