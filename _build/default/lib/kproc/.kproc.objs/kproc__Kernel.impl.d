lib/kproc/kernel.ml: Buffer Hashtbl Kfs Kmm Ksim Kvfs List Option String
