lib/kproc/kernel.mli: Kmm Ksim Kvfs
