(* The benchmark harness: regenerates every table and figure of the paper
   (printed first, computed from the record-level data), then times the
   microbenchmarks behind the paper's performance claims:

     modularity/*  cost of calling through the modular interface (step 1)
     typesafety/*  void*-dispatch vs typed dispatch (step 2)
     ownership/*   the three sharing models vs copying message passing (§4.3)
     roadmap/*     the same workload at every safety stage (steps 0-4)
     journal/*     journaling vs in-place writes, and batching (§4.4)
     ablation/*    each checker's overhead, switchable off

   Absolute numbers are simulator numbers; the claims under test are the
   *shapes*: modular dispatch is cheap, sharing models stay flat while
   copying grows with payload size, safety stages cost a small constant
   factor, journaling pays a bounded write amplification. *)

open Bechamel

let std = Format.std_formatter

(* Running and printing ------------------------------------------------- *)

let run_group name tests =
  let grouped = Test.make_grouped ~name tests in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] grouped in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun test_name ols_result acc ->
        let ns =
          match Analyze.OLS.estimates ols_result with
          | Some (estimate :: _) -> estimate
          | Some [] | None -> nan
        in
        (test_name, ns) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Fmt.pr "@.%s@." (String.make 64 '-');
  List.iter (fun (test_name, ns) -> Fmt.pr "%-44s %12.0f ns/op@." test_name ns) rows;
  rows

let staged f = Staged.stage f

(* BENCH-MOD: modular interface vs direct call --------------------------- *)

let bench_modularity () =
  let p = Kspec.Fs_spec.path_of_string in
  let direct_fs = Kfs.Memfs_typed.mkfs () in
  ignore (Kfs.Memfs_typed.apply direct_fs (Kspec.Fs_spec.Create (p "/f")));
  let inst = Kvfs.Iface.make (module Kfs.Memfs_typed) () in
  ignore (Kvfs.Iface.instance_apply inst (Kspec.Fs_spec.Create (p "/f")));
  let vfs = Kvfs.Vfs.create () in
  (match Kvfs.Vfs.mount vfs ~at:[] (Kvfs.Iface.make (module Kfs.Memfs_typed) ()) with
  | Ok () -> ()
  | Error _ -> assert false);
  ignore (Kvfs.Vfs.apply vfs (Kspec.Fs_spec.Create (p "/f")));
  let stat = Kspec.Fs_spec.Stat (p "/f") in
  run_group "modularity"
    [
      Test.make ~name:"direct-call" (staged (fun () -> Kfs.Memfs_typed.apply direct_fs stat));
      Test.make ~name:"modular-interface" (staged (fun () -> Kvfs.Iface.instance_apply inst stat));
      Test.make ~name:"vfs-mount-table" (staged (fun () -> Kvfs.Vfs.apply vfs stat));
    ]

(* BENCH-TYPE: void* dispatch vs typed dispatch --------------------------- *)

let bench_typesafety () =
  let dyn_sock =
    match Knet.Sock.Dyn_style.socket "dgram" with Ok s -> s | Error _ -> assert false
  in
  let typed_pair =
    match Knet.Sock.Typed.socket_pair "dgram" with Ok pr -> pr | Error _ -> assert false
  in
  let key : int Ksim.Dyn.Key.t = Ksim.Dyn.Key.create ~name:"bench.int" in
  let dyn_value = Ksim.Dyn.inject key 42 in
  let typed_amp = Knet.Amp.Typed.create () in
  Knet.Amp.Typed.register typed_amp ~channel:2 Knet.Amp.Data;
  let unsafe_amp = Knet.Amp.Unsafe.create () in
  Knet.Amp.Unsafe.register unsafe_amp ~channel:2 Knet.Amp.Data;
  let packet = Knet.Amp.encode_data ~channel:2 { Knet.Amp.body = "payload-bytes" } in
  run_group "typesafety"
    [
      Test.make ~name:"dyn-cast" (staged (fun () -> Ksim.Dyn.cast_exn key dyn_value));
      Test.make ~name:"dyn-socket-status"
        (staged (fun () -> Knet.Sock.Dyn_style.is_connected dyn_sock));
      Test.make ~name:"typed-socket-status"
        (staged (fun () -> Knet.Sock.Typed.is_connected typed_pair));
      Test.make ~name:"amp-unsafe-receive"
        (staged (fun () -> Knet.Amp.Unsafe.receive unsafe_amp packet));
      Test.make ~name:"amp-typed-receive"
        (staged (fun () -> Knet.Amp.Typed.receive typed_amp packet));
    ]

(* BENCH-OWN: the three sharing models vs copying ------------------------- *)

let bench_ownership () =
  let sizes = [ 64; 1024; 16384; 65536 ] in
  let tests =
    List.concat_map
      (fun size ->
        let ck = Ownership.Checker.create ~strict:true () in
        let cap = Ownership.Checker.alloc ck ~holder:"caller" ~size in
        let ch = Ownership.Message.create () in
        let payload = Bytes.make size 'p' in
        let one = Bytes.make 1 'x' in
        [
          Test.make
            ~name:(Printf.sprintf "share-exclusive-%db" size)
            (staged (fun () ->
                 Ownership.Checker.lend_exclusive ck cap ~to_:"callee" ~f:(fun b ->
                     Ownership.Checker.write ck b ~off:0 one)));
          Test.make
            ~name:(Printf.sprintf "share-shared-%db" size)
            (staged (fun () ->
                 Ownership.Checker.lend_shared ck cap ~to_:[ "callee" ] ~f:(fun borrowed ->
                     match borrowed with
                     | [ b ] -> ignore (Ownership.Checker.read ck b ~off:0 ~len:1)
                     | _ -> assert false)));
          Test.make
            ~name:(Printf.sprintf "transfer-cycle-%db" size)
            (staged (fun () ->
                 let c = Ownership.Checker.alloc ck ~holder:"caller" ~size in
                 let c' = Ownership.Checker.transfer ck c ~to_:"callee" in
                 Ownership.Checker.free ck c'));
          Test.make
            ~name:(Printf.sprintf "message-copy-%db" size)
            (staged (fun () -> ignore (Ownership.Message.call ch payload ~f:(fun req -> req))));
        ])
      sizes
  in
  run_group "ownership" tests

(* BENCH-STEPS: one workload, every safety stage --------------------------- *)

let bench_roadmap () =
  let trace = Kfs.Workload.generate ~seed:5 Kfs.Workload.Mixed ~ops:200 in
  let replay (module F : Kvfs.Iface.FS_OPS) () =
    let fs = F.mkfs () in
    List.iter (fun op -> ignore (F.apply fs op)) trace
  in
  run_group "roadmap"
    [
      Test.make ~name:"stage0-unsafe-200ops" (staged (replay (module Kfs.Memfs_unsafe.Modular)));
      Test.make ~name:"stage2-typed-200ops" (staged (replay (module Kfs.Memfs_typed)));
      Test.make ~name:"stage3-owned-200ops" (staged (replay (module Kfs.Memfs_owned)));
      Test.make ~name:"stage4-verified-200ops" (staged (replay (module Kfs.Memfs_verified)));
    ]

(* BENCH-JOURNAL: journaled vs direct, and fsync batching ------------------- *)

let bench_journal () =
  let p = Kspec.Fs_spec.path_of_string in
  let data = String.make 256 'j' in
  let fs_cycle ?(group_commit = false) mode ~ops_per_fsync () =
    let fs =
      Kfs.Journalfs.mkfs_on ~group_commit mode
        (Kblock.Blockdev.create ~nblocks:1024 ~block_size:512)
    in
    ignore (Kfs.Journalfs.apply fs (Kspec.Fs_spec.Create (p "/f")));
    for i = 0 to 19 do
      ignore (Kfs.Journalfs.apply fs (Kspec.Fs_spec.Write { file = p "/f"; off = 0; data }));
      if (i + 1) mod ops_per_fsync = 0 then ignore (Kfs.Journalfs.apply fs Kspec.Fs_spec.Fsync)
    done
  in
  run_group "journal"
    [
      Test.make ~name:"journaled-fsync-each"
        (staged (fs_cycle Kfs.Journalfs.Journaled ~ops_per_fsync:1));
      Test.make ~name:"journaled-fsync-per5"
        (staged (fs_cycle Kfs.Journalfs.Journaled ~ops_per_fsync:5));
      Test.make ~name:"journaled-fsync-once"
        (staged (fs_cycle Kfs.Journalfs.Journaled ~ops_per_fsync:20));
      Test.make ~name:"journaled-group-fsync-once"
        (staged (fs_cycle ~group_commit:true Kfs.Journalfs.Journaled ~ops_per_fsync:20));
      Test.make ~name:"journaled-group-fsync-per5"
        (staged (fs_cycle ~group_commit:true Kfs.Journalfs.Journaled ~ops_per_fsync:5));
      Test.make ~name:"direct-fsync-each" (staged (fs_cycle Kfs.Journalfs.Direct ~ops_per_fsync:1));
      Test.make ~name:"direct-fsync-once" (staged (fs_cycle Kfs.Journalfs.Direct ~ops_per_fsync:20));
    ]

(* BENCH-RESIL: the fault-injection plumbing must be free when disabled ----- *)

let bench_resilience () =
  let p = Kspec.Fs_spec.path_of_string in
  let data = String.make 256 'r' in
  let cycle mk () =
    let dev = Kblock.Blockdev.create ~nblocks:1024 ~block_size:512 in
    let io, arm = mk dev in
    let fs = Kfs.Journalfs.mkfs_on ?io Kfs.Journalfs.Journaled dev in
    arm ();
    ignore (Kfs.Journalfs.apply fs (Kspec.Fs_spec.Create (p "/f")));
    for _ = 1 to 20 do
      ignore (Kfs.Journalfs.apply fs (Kspec.Fs_spec.Write { file = p "/f"; off = 0; data }))
    done;
    ignore (Kfs.Journalfs.apply fs Kspec.Fs_spec.Fsync)
  in
  let bare _dev = (None, fun () -> ()) in
  let stack ?(faults = false) dev =
    let fp = Ksim.Failpoint.create ~trace:(Ksim.Ktrace.create ()) ~seed:1 () in
    let flaky = Kblock.Flakydev.create ~fp (Kblock.Blockdev.io dev) in
    let io = Kblock.Resilient.io (Kblock.Resilient.create ~max_attempts:6 (Kblock.Flakydev.io flaky)) in
    let arm () =
      if faults then
        Ksim.Failpoint.configure fp "flaky.write-eio" ~enabled:true ~probability:0.1 ()
    in
    (Some io, arm)
  in
  run_group "resilience"
    [
      Test.make ~name:"journalfs-write-bare" (staged (cycle bare));
      Test.make ~name:"journalfs-write-stack-disabled" (staged (cycle (stack ~faults:false)));
      Test.make ~name:"journalfs-write-stack-10pct-faults" (staged (cycle (stack ~faults:true)));
    ]

(* BENCH-SUP: the oops firewall — healthy-path overhead of the supervised
   mount, and the wall cost of a full contained-oops cycle (panic, EINTR
   drain, microreboot).  The recovery latency on the simulated clock is
   deterministic, so it is printed once as a number rather than timed. *)

let bench_supervision () =
  let p = Kspec.Fs_spec.path_of_string in
  let stat = Kspec.Fs_spec.Stat (p "/f") in
  let plain_vfs = Kvfs.Vfs.create () in
  (match Kvfs.Vfs.mount plain_vfs ~at:[] (Kvfs.Iface.make (module Kfs.Memfs_typed) ()) with
  | Ok () -> ()
  | Error _ -> assert false);
  ignore (Kvfs.Vfs.apply plain_vfs (Kspec.Fs_spec.Create (p "/f")));
  let sup_vfs = Kvfs.Vfs.create () in
  (match
     Kvfs.Vfs.mount sup_vfs ~at:[]
       ~remake:(fun () -> Kvfs.Iface.make (module Kfs.Memfs_typed) ())
       (Kvfs.Iface.make (module Kfs.Memfs_typed) ())
   with
  | Ok () -> ()
  | Error _ -> assert false);
  ignore (Kvfs.Vfs.apply sup_vfs (Kspec.Fs_spec.Create (p "/f")));
  (* One full contained-oops cycle.  Under the default policy the
     schedule is exact: panic -> EIO, drain -> EINTR, reboot -> op runs
     against the new generation. *)
  let reboot_cycle () =
    let fp = Ksim.Failpoint.create ~trace:(Ksim.Ktrace.create ()) ~seed:1 () in
    let make () = Kvfs.Iface.panicky ~fp (Kvfs.Iface.make (module Kfs.Memfs_typed) ()) in
    let vfs = Kvfs.Vfs.create () in
    (match Kvfs.Vfs.mount vfs ~at:[] ~remake:make (make ()) with
    | Ok () -> ()
    | Error _ -> assert false);
    Ksim.Failpoint.configure fp "module.panic" ~enabled:true ~times:1 ();
    ignore (Kvfs.Vfs.apply vfs stat);
    ignore (Kvfs.Vfs.apply vfs stat);
    ignore (Kvfs.Vfs.apply vfs stat);
    vfs
  in
  (match Kvfs.Vfs.supervisor_at (reboot_cycle ()) (p "/") with
  | Some sup ->
      Fmt.pr "supervision: simulated recovery latency %d ns (oops -> healthy), epoch %d@."
        (Ksim.Supervisor.last_recovery_ns sup) (Ksim.Supervisor.epoch sup)
  | None -> assert false);
  run_group "supervision"
    [
      Test.make ~name:"vfs-stat-unsupervised" (staged (fun () -> Kvfs.Vfs.apply plain_vfs stat));
      Test.make ~name:"vfs-stat-supervised-healthy"
        (staged (fun () -> Kvfs.Vfs.apply sup_vfs stat));
      Test.make ~name:"microreboot-full-cycle" (staged (fun () -> reboot_cycle ()));
    ]

(* The extension VM: interpreted-but-verified vs native hook ---------------- *)

let bench_ebpf () =
  let filter =
    match Kebpf.Attach.attach_filter (Kebpf.Attach.packet_kind_filter ~kind:1 ~min_len:4) with
    | Ok f -> f
    | Error _ -> assert false
  in
  let native packet =
    String.length packet >= 4 && packet.[0] = '\001'
  in
  let packet = "\001payload-bytes" in
  let tracer =
    match Kebpf.Attach.attach_tracer Kebpf.Attach.opcode_tracer with
    | Ok t -> t
    | Error _ -> assert false
  in
  let op = Kspec.Fs_spec.Stat (Kspec.Fs_spec.path_of_string "/a/b") in
  run_group "ebpf"
    [
      Test.make ~name:"vm-packet-filter" (staged (fun () -> Kebpf.Attach.filter_packet filter packet));
      Test.make ~name:"native-packet-filter" (staged (fun () -> native packet));
      Test.make ~name:"vm-op-tracer" (staged (fun () -> Kebpf.Attach.trace_op tracer op));
    ]

(* The virtual-memory stack: fault, COW, fork costs -------------------------- *)

let bench_mm () =
  let page_size = 4096 in
  let fresh_space nframes =
    Kmm.Addr_space.create (Kmm.Phys.create ~nframes ~page_size)
  in
  let fault_16_pages () =
    let space = fresh_space 32 in
    match Kmm.Addr_space.mmap space ~len:(16 * page_size) ~prot:Kmm.Addr_space.prot_rw
            Kmm.Addr_space.Anon with
    | Ok addr -> ignore (Kmm.Addr_space.read space ~addr ~len:(16 * page_size))
    | Error _ -> assert false
  in
  let warm = fresh_space 32 in
  let warm_addr =
    match Kmm.Addr_space.mmap warm ~len:(4 * page_size) ~prot:Kmm.Addr_space.prot_rw
            Kmm.Addr_space.Anon with
    | Ok a -> a
    | Error _ -> assert false
  in
  ignore (Kmm.Addr_space.write warm ~addr:warm_addr (String.make 64 'w'));
  let fork_and_cow () =
    let space = fresh_space 64 in
    (match Kmm.Addr_space.mmap space ~len:(8 * page_size) ~prot:Kmm.Addr_space.prot_rw
             Kmm.Addr_space.Anon with
    | Ok addr ->
        ignore (Kmm.Addr_space.write space ~addr (String.make (8 * page_size) 'p'));
        let child = Kmm.Addr_space.fork space in
        ignore (Kmm.Addr_space.write child ~addr "c");
        Kmm.Addr_space.destroy child;
        Kmm.Addr_space.destroy space
    | Error _ -> assert false)
  in
  run_group "mm"
    [
      Test.make ~name:"demand-fault-16-pages" (staged fault_16_pages);
      Test.make ~name:"resident-read-64b"
        (staged (fun () -> Kmm.Addr_space.read warm ~addr:warm_addr ~len:64));
      Test.make ~name:"fork+cow-8-pages" (staged fork_and_cow);
    ]

(* Ablations: each checker's cost, on vs off -------------------------------- *)

let bench_ablation () =
  let trace = Kfs.Workload.generate ~seed:6 Kfs.Workload.Mixed ~ops:100 in
  let raw_impl () =
    let t = Kfs.Memfs_verified.Impl.create () in
    List.iter (fun op -> ignore (Kfs.Memfs_verified.Impl.apply t op)) trace
  in
  let monitored () =
    let fs = Kfs.Memfs_verified.mkfs () in
    List.iter (fun op -> ignore (Kfs.Memfs_verified.apply fs op)) trace
  in
  let bh_cycle ~check_states () =
    let dev = Kblock.Blockdev.create ~nblocks:64 ~block_size:256 in
    let cache = Kblock.Buffer_head.create ~check_states dev in
    for blkno = 8 to 27 do
      let bh = Kblock.Buffer_head.getblk cache blkno in
      Kblock.Buffer_head.set_data cache bh (Bytes.make 256 'b');
      ignore (Kblock.Buffer_head.submit_write cache bh);
      Kblock.Buffer_head.brelse bh
    done;
    Kblock.Blockdev.flush dev
  in
  let ck = Ownership.Checker.create ~strict:true () in
  let cap = Ownership.Checker.alloc ck ~holder:"bench" ~size:4096 in
  let bare = Bytes.create 4096 in
  let src = Bytes.make 64 'x' in
  let validation () =
    ignore
      (Safeos_core.Roadmap.validate ~ops:50 (fun () ->
           Kvfs.Iface.make (module Kfs.Memfs_typed) ()))
  in
  run_group "ablation"
    [
      Test.make ~name:"fs-raw-impl-100ops" (staged raw_impl);
      Test.make ~name:"fs-refinement-monitored-100ops" (staged monitored);
      Test.make ~name:"bufferhead-checked-20blocks" (staged (bh_cycle ~check_states:true));
      Test.make ~name:"bufferhead-unchecked-20blocks" (staged (bh_cycle ~check_states:false));
      Test.make ~name:"ownership-checked-write-64b"
        (staged (fun () -> Ownership.Checker.write ck cap ~off:0 src));
      Test.make ~name:"raw-bytes-write-64b" (staged (fun () -> Bytes.blit src 0 bare 0 64));
      Test.make ~name:"migration-validation-50ops" (staged validation);
    ]

(* BENCH-LOAD: the multi-tenant load harness.  Two things happen here:
   a bechamel timing of a small population (the harness must stay cheap
   enough to live inside CI), and one full storm run whose report is
   persisted as BENCH_6.json at the repo root — ops/sec, recovery-latency
   percentiles and the shed-load rate, the per-PR trajectory ROADMAP
   item 2 asks for. *)

let bench_kload () =
  let small =
    { Kload.Spec.default with Kload.Spec.tenants = 60; ops_per_tenant = 6 }
  in
  let rows =
    run_group "kload"
      [
        Test.make ~name:"360ops-60tenants-no-storm"
          (staged (fun () -> Kload.Harness.run ~spec:small ~seed:11 ()));
        Test.make ~name:"360ops-60tenants-panic-wave"
          (staged (fun () ->
               Kload.Harness.run ~spec:small ~storm:Kload.Harness.Panic_wave ~seed:11 ()));
      ]
  in
  (* The persisted run: default population, full mixed storm. *)
  let t0 = Sys.time () in
  let { Kload.Harness.report; _ } =
    Kload.Harness.run ~storm:Kload.Harness.Mixed ~seed:42 ()
  in
  let wall = Sys.time () -. t0 in
  let shed_rate =
    if report.Kload.Report.planned = 0 then 0.
    else float_of_int report.Kload.Report.shed /. float_of_int report.Kload.Report.planned
  in
  Fmt.pr "@.kload storm run (persisted): %a@." Kload.Report.pp report;
  let json =
    Printf.sprintf
      "{\n  \"issue\": 6,\n  \"wall_seconds\": %.4f,\n  \"wall_ops_per_sec\": %.0f,\n  \"report\": %s\n}\n"
      wall
      (if wall > 0. then float_of_int report.Kload.Report.executed /. wall else 0.)
      (Kload.Report.to_json_string report)
  in
  let path =
    match Klint.find_root () with
    | Some root -> Filename.concat root "BENCH_6.json"
    | None -> "BENCH_6.json"
  in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Fmt.pr "kload: shed rate %.3f, report written to %s@." shed_rate path;
  rows

(* BENCH-LINT: the static analyses gate every CI run, so their cost is
   part of the developer loop; keep the whole-tree pass visibly cheap. ---- *)

let bench_lint () =
  let root =
    match Klint.find_root () with
    | Some r -> r
    | None -> failwith "bench: cannot locate dune-project root"
  in
  let rows =
    run_group "lint"
      [
        Test.make ~name:"kracer-whole-tree"
          (staged (fun () -> ignore (Klint.Kracer.analyze_tree ~root)));
        Test.make ~name:"kown-whole-tree"
          (staged (fun () -> ignore (Klint.Kown.analyze_tree ~root)));
        Test.make ~name:"ktcb-whole-tree"
          (staged (fun () -> ignore (Klint.Ktcb.analyze_tree ~root)));
        Test.make ~name:"kdur-whole-tree"
          (staged (fun () -> ignore (Klint.Kdur.analyze_tree ~root)));
        Test.make ~name:"full-lint+kracer-tree"
          (staged (fun () -> ignore (Klint.Engine.lint_tree ~root)));
      ]
  in
  (* The persisted TCB snapshot: one wall-clocked whole-tree ktcb pass
     plus the metric object itself, the per-PR trajectory the ratchet
     walks downward. *)
  let t0 = Sys.time () in
  let tcb = Klint.Ktcb.analyze_tree ~root in
  let wall = Sys.time () -. t0 in
  Fmt.pr "@.ktcb (persisted): %d/%d unsafe lines (%.1f%%), frame %d files/%d lines@."
    tcb.Klint.Ktcb.unsafe_loc tcb.Klint.Ktcb.total_loc (Klint.Ktcb.ratio tcb)
    tcb.Klint.Ktcb.frame_files tcb.Klint.Ktcb.frame_loc;
  let json =
    Printf.sprintf
      "{\n  \"issue\": 7,\n  \"ktcb_wall_seconds\": %.4f,\n  \"tcb\": %s\n}\n"
      wall
      (Klint.Report.tcb_json tcb)
  in
  let path = Filename.concat root "BENCH_7.json" in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Fmt.pr "ktcb: tcb snapshot written to %s@." path;
  (* And the durability snapshot (issue 10): one wall-clocked whole-tree
     kdur pass plus the contract/finding counts — the trajectory the dur
     ratchet walks downward as barrier paths get fixed. *)
  let t0 = Sys.time () in
  let kdur = Klint.Kdur.analyze_tree ~root in
  let kdur_wall = Sys.time () -. t0 in
  Fmt.pr
    "kdur (persisted): %d functions, %d durable / %d ordering contracts, %d findings@."
    kdur.Klint.Kdur.funcs kdur.Klint.Kdur.durable_funcs kdur.Klint.Kdur.ordering_funcs
    (List.length kdur.Klint.Kdur.findings);
  let json =
    Printf.sprintf
      "{\n  \"issue\": 10,\n  \"kdur_wall_seconds\": %.4f,\n  \"durability\": %s\n}\n"
      kdur_wall
      (Klint.Report.durability_json kdur)
  in
  let path = Filename.concat root "BENCH_10.json" in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Fmt.pr "kdur: durability snapshot written to %s@." path;
  rows

(* BENCH-REFINE: the krefine enumerator.  A bechamel timing of a short
   lockstep-only pass (the inner loop CI's refine smoke stage pays per
   op), plus one persisted full run — states/sec and crash-images/sec
   over a kload-recorded trace, written as BENCH_8.json so the
   enumerator's throughput is a per-PR trajectory like the kload and tcb
   snapshots before it. *)

let bench_refine () =
  let trace = Kharness.recorded_trace ~target_ops:400 ~seed:11 () in
  let lockstep_only =
    { Kspec.Krefine.default_config with Kspec.Krefine.crash_every = 0 }
  in
  let crashing =
    { Kspec.Krefine.default_config with Kspec.Krefine.images_per_op = 2; crash_every = 8 }
  in
  (* The un-checked baseline the lockstep claim compares against: the
     same trace applied to journalfs-on-blockdev with no spec, no
     interp, no invariant. *)
  let geometry =
    { Kfs.Journalfs.nblocks = 4096; block_size = 512; jblocks = 96; ninodes = 128 }
  in
  let bare_run () =
    let dev =
      Kblock.Blockdev.create ~nblocks:geometry.Kfs.Journalfs.nblocks
        ~block_size:geometry.Kfs.Journalfs.block_size
    in
    let fs = Kfs.Journalfs.mkfs_on ~geometry Kfs.Journalfs.Journaled dev in
    List.iter (fun op -> ignore (Kfs.Journalfs.apply fs op)) trace
  in
  let rows =
    run_group "refine"
      [
        Test.make ~name:"journalfs-bare-400ops" (staged bare_run);
        Test.make ~name:"journalfs-lockstep-400ops"
          (staged (fun () ->
               ignore (Kharness.run ~config:lockstep_only Kharness.journalfs trace)));
        Test.make ~name:"journalfs-crash-enum-400ops"
          (staged (fun () ->
               ignore (Kharness.run ~config:crashing Kharness.journalfs trace)));
        Test.make ~name:"cowfs-lockstep-400ops"
          (staged (fun () ->
               ignore (Kharness.run ~config:lockstep_only Kharness.cowfs trace)));
      ]
  in
  rows

(* The persisted refine run: every registered harness over a longer
   trace with crash enumeration on, wall-clocked.  Runs *before* the
   timing groups — the process-global simulator state (lockdep classes,
   kmem site tables) the other benches accumulate across thousands of
   mounts would otherwise tax this measurement. *)
let refine_snapshot () =
  let long = Kharness.recorded_trace ~target_ops:2_000 ~seed:11 () in
  let config =
    { Kspec.Krefine.default_config with Kspec.Krefine.images_per_op = 4; crash_every = 4 }
  in
  let t0 = Sys.time () in
  let covs = List.map (fun e -> (e, Kharness.run ~config e long)) (Kharness.all ()) in
  let wall = Sys.time () -. t0 in
  let sum f = List.fold_left (fun a (_, c) -> a + f c) 0 covs in
  let states = sum (fun c -> c.Kspec.Krefine.states_explored) in
  let images = sum (fun c -> c.Kspec.Krefine.crash_images) in
  let divergences = sum (fun c -> List.length c.Kspec.Krefine.divergences) in
  let per_sec n = if wall > 0. then float_of_int n /. wall else 0. in
  let harness_json =
    String.concat ",\n    "
      (List.map
         (fun ((e : Kharness.entry), (c : Kspec.Krefine.coverage)) ->
           Printf.sprintf
             "{\"harness\": \"%s\", \"ops\": %d, \"states\": %d, \"crash_images\": %d, \
              \"divergences\": %d, \"fingerprint\": \"%s\"}"
             e.Kharness.hname c.Kspec.Krefine.ops c.Kspec.Krefine.states_explored
             c.Kspec.Krefine.crash_images
             (List.length c.Kspec.Krefine.divergences)
             (Kspec.Krefine.coverage_fingerprint c))
         covs)
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"issue\": 8,\n\
      \  \"trace_ops\": %d,\n\
      \  \"wall_seconds\": %.4f,\n\
      \  \"states_per_sec\": %.0f,\n\
      \  \"crash_images_per_sec\": %.0f,\n\
      \  \"divergences\": %d,\n\
      \  \"harnesses\": [\n    %s\n  ]\n\
       }\n"
      (List.length long) wall (per_sec states) (per_sec images) divergences harness_json
  in
  let path =
    match Klint.find_root () with
    | Some root -> Filename.concat root "BENCH_8.json"
    | None -> "BENCH_8.json"
  in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Fmt.pr
    "@.krefine (persisted): %d states (%.0f/s), %d crash images (%.0f/s), %d divergences, \
     written to %s@."
    states (per_sec states) images (per_sec images) divergences path

(* BENCH-WCACHE: the volatile write-back disk contract (issue 9).  Two
   persisted trajectories in BENCH_9.json: enumerator throughput with
   cache-loss residues sampled at {e every} op (the crash surface the
   wcache multiplied under every registered harness), and wall-clock
   percentiles for one journal-replay recovery over a materialized
   cache-loss residue — the price of coming back from a lying drive. *)
let wcache_snapshot () =
  let trace = Kharness.recorded_trace ~target_ops:1_000 ~seed:11 () in
  let config =
    { Kspec.Krefine.default_config with Kspec.Krefine.images_per_op = 8; crash_every = 1 }
  in
  let t0 = Sys.time () in
  let covs = List.map (fun e -> (e, Kharness.run ~config e trace)) (Kharness.all ()) in
  let wall = Sys.time () -. t0 in
  let sum f = List.fold_left (fun a (_, c) -> a + f c) 0 covs in
  let states = sum (fun c -> c.Kspec.Krefine.states_explored) in
  let images = sum (fun c -> c.Kspec.Krefine.crash_images) in
  let divergences = sum (fun c -> List.length c.Kspec.Krefine.divergences) in
  let per_sec n = if wall > 0. then float_of_int n /. wall else 0. in
  (* Cache-loss recovery: journalfs over the cache with a small dirty
     bound, residues materialized over the durable media snapshot, each
     journal-replay mount wall-clocked into a histogram. *)
  let g = { Kfs.Journalfs.nblocks = 512; block_size = 128; jblocks = 48; ninodes = 16 } in
  let dev = Kblock.Blockdev.create ~nblocks:g.Kfs.Journalfs.nblocks ~block_size:g.Kfs.Journalfs.block_size in
  let wc = Kblock.Wcache.create ~capacity:8 ~seed:11 (Kblock.Blockdev.io dev) in
  let fs = Kfs.Journalfs.mkfs_on ~geometry:g ~io:(Kblock.Wcache.io wc) Kfs.Journalfs.Journaled dev in
  (match Kblock.Wcache.flush wc with Ok () -> () | Error _ -> assert false);
  ignore (Kblock.Wcache.take_durable wc);
  let media0 = Kblock.Blockdev.snapshot_media dev in
  let apply_entry media (e : Kblock.Wcache.entry) =
    media.(e.blkno) <- Bytes.of_string e.data
  in
  let hist = Ksim.Hist.create () in
  let p = Kspec.Fs_spec.path_of_string in
  let rng = Ksim.Rng.of_int 1009 in
  ignore (Kfs.Journalfs.apply fs (Kspec.Fs_spec.Create (p "/k")));
  for i = 1 to 200 do
    (match Ksim.Rng.int rng 5 with
    | 0 | 1 | 2 ->
        ignore
          (Kfs.Journalfs.apply fs
             (Kspec.Fs_spec.Write
                { file = p "/k"; off = 0; data = Printf.sprintf "v%08d:%s" i (String.make 16 'x') }))
    | 3 ->
        ignore
          (Kfs.Journalfs.apply fs
             (Kspec.Fs_spec.Create (p (Printf.sprintf "/c%d" (Ksim.Rng.int rng 4)))))
    | _ -> ignore (Kfs.Journalfs.apply fs Kspec.Fs_spec.Fsync));
    if i mod 10 = 0 then begin
      List.iter
        (fun residue ->
          let media = Array.map Bytes.copy media0 in
          List.iter (apply_entry media) residue;
          let dev' = Kblock.Blockdev.of_media ~block_size:g.Kfs.Journalfs.block_size media in
          let m0 = Unix.gettimeofday () in
          ignore (Kfs.Journalfs.mount ~geometry:g Kfs.Journalfs.Journaled dev');
          Ksim.Hist.record hist
            (int_of_float ((Unix.gettimeofday () -. m0) *. 1e9)))
        (Kblock.Wcache.crash_residues wc ~limit:8);
      List.iter (apply_entry media0) (Kblock.Wcache.take_durable wc)
    end
  done;
  let s = Ksim.Hist.summarize hist in
  let harness_json =
    String.concat ",\n    "
      (List.map
         (fun ((e : Kharness.entry), (c : Kspec.Krefine.coverage)) ->
           Printf.sprintf
             "{\"harness\": \"%s\", \"ops\": %d, \"states\": %d, \"crash_images\": %d, \
              \"divergences\": %d}"
             e.Kharness.hname c.Kspec.Krefine.ops c.Kspec.Krefine.states_explored
             c.Kspec.Krefine.crash_images
             (List.length c.Kspec.Krefine.divergences))
         covs)
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"issue\": 9,\n\
      \  \"trace_ops\": %d,\n\
      \  \"crash_every\": 1,\n\
      \  \"wall_seconds\": %.4f,\n\
      \  \"states_per_sec\": %.0f,\n\
      \  \"crash_images_per_sec\": %.0f,\n\
      \  \"divergences\": %d,\n\
      \  \"recovery_ns\": {\"count\": %d, \"min\": %d, \"mean\": %.0f, \"p50\": %d, \
       \"p95\": %d, \"p99\": %d, \"max\": %d},\n\
      \  \"harnesses\": [\n    %s\n  ]\n\
       }\n"
      (List.length trace) wall (per_sec states) (per_sec images) divergences
      s.Ksim.Hist.count s.Ksim.Hist.min s.Ksim.Hist.mean s.Ksim.Hist.p50 s.Ksim.Hist.p95
      s.Ksim.Hist.p99 s.Ksim.Hist.max harness_json
  in
  let path =
    match Klint.find_root () with
    | Some root -> Filename.concat root "BENCH_9.json"
    | None -> "BENCH_9.json"
  in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Fmt.pr
    "@.kwcache (persisted): %d states (%.0f/s), %d cache-loss images (%.0f/s), %d \
     divergences; recovery p50=%dns p99=%dns over %d replay mounts, written to %s@."
    states (per_sec states) images (per_sec images) divergences s.Ksim.Hist.p50
    s.Ksim.Hist.p99 s.Ksim.Hist.count path

(* Shape checks: turn the measured rows into the paper's qualitative
   claims, so bench output is self-judging. ------------------------------- *)

let find rows needle = List.assoc_opt needle rows |> Option.value ~default:nan

let shape_summary ~modularity ~typesafety ~ownership ~roadmap ~journal ~resilience ~supervision
    ~ablation ~lint ~refine =
  Fmt.pr "@.%s@.shape checks (paper claim -> measured):@." (String.make 64 '=');
  let ratio a b = if Float.is_nan a || Float.is_nan b || b = 0. then nan else a /. b in
  let claim name ok detail = Fmt.pr "  [%s] %-52s %s@." (if ok then "ok" else "??") name detail in
  let r1 =
    ratio (find modularity "modularity/modular-interface") (find modularity "modularity/direct-call")
  in
  claim "modular dispatch within ~3x of a direct call" (r1 < 3.0 || Float.is_nan r1)
    (Fmt.str "%.2fx" r1);
  let r2 =
    ratio (find typesafety "typesafety/amp-typed-receive")
      (find typesafety "typesafety/amp-unsafe-receive")
  in
  claim "typed packet dispatch ~ void* dispatch" (r2 < 2.0 || Float.is_nan r2) (Fmt.str "%.2fx" r2);
  let small =
    ratio (find ownership "ownership/message-copy-64b") (find ownership "ownership/share-shared-64b")
  in
  let large =
    ratio
      (find ownership "ownership/message-copy-65536b")
      (find ownership "ownership/share-shared-65536b")
  in
  claim "copy cost grows with payload; sharing stays flat" (large > small || Float.is_nan large)
    (Fmt.str "copy/share: %.1fx at 64B -> %.1fx at 64KiB" small large);
  let r4 =
    ratio (find roadmap "roadmap/stage2-typed-200ops") (find roadmap "roadmap/stage0-unsafe-200ops")
  in
  let r5 =
    ratio (find roadmap "roadmap/stage4-verified-200ops") (find roadmap "roadmap/stage2-typed-200ops")
  in
  claim "type safety is not slower than the unsafe idioms" (r4 < 1.5 || Float.is_nan r4)
    (Fmt.str "typed/unsafe %.2fx" r4);
  claim "verification monitor costs a bounded factor" (r5 < 30.0 || Float.is_nan r5)
    (Fmt.str "verified/typed %.2fx" r5);
  let rj = ratio (find journal "journal/journaled-fsync-each") (find journal "journal/direct-fsync-each") in
  let rb =
    ratio (find journal "journal/journaled-fsync-each")
      (find journal "journal/journaled-group-fsync-once")
  in
  claim "journaling costs a bounded write amplification" (rj < 8.0 || Float.is_nan rj)
    (Fmt.str "journaled/direct %.2fx" rj);
  claim "group commit amortizes the journal" (rb > 1.2 || Float.is_nan rb)
    (Fmt.str "per-op-commit/group-commit %.2fx" rb);
  let rr =
    ratio
      (find resilience "resilience/journalfs-write-stack-disabled")
      (find resilience "resilience/journalfs-write-bare")
  in
  claim "disabled failpoints cost ~nothing on the write path" (rr < 1.5 || Float.is_nan rr)
    (Fmt.str "stack-disabled/bare %.2fx" rr);
  let rs =
    ratio
      (find supervision "supervision/vfs-stat-supervised-healthy")
      (find supervision "supervision/vfs-stat-unsupervised")
  in
  claim "oops firewall is cheap on the healthy path" (rs < 3.0 || Float.is_nan rs)
    (Fmt.str "supervised/unsupervised %.2fx" rs);
  let ra =
    ratio (find ablation "ablation/bufferhead-checked-20blocks")
      (find ablation "ablation/bufferhead-unchecked-20blocks")
  in
  claim "buffer_head validity checks are cheap" (ra < 2.0 || Float.is_nan ra) (Fmt.str "%.2fx" ra);
  let rl = ratio (find lint "lint/kown-whole-tree") (find lint "lint/kracer-whole-tree") in
  claim "ownership lint costs the same order as the race lint" (rl < 5.0 || Float.is_nan rl)
    (Fmt.str "kown/kracer %.2fx" rl);
  let rt = ratio (find lint "lint/ktcb-whole-tree") (find lint "lint/kracer-whole-tree") in
  claim "frame-confinement lint costs the same order as the race lint"
    (rt < 5.0 || Float.is_nan rt)
    (Fmt.str "ktcb/kracer %.2fx" rt);
  let rd = ratio (find lint "lint/kdur-whole-tree") (find lint "lint/kracer-whole-tree") in
  claim "barrier-discipline lint costs the same order as the race lint"
    (rd < 5.0 || Float.is_nan rd)
    (Fmt.str "kdur/kracer %.2fx" rd);
  let rf =
    ratio
      (find refine "refine/journalfs-lockstep-400ops")
      (find refine "refine/journalfs-bare-400ops")
  in
  claim "lockstep refinement costs a bounded factor over bare execution"
    (rf < 50.0 || Float.is_nan rf)
    (Fmt.str "lockstep/bare %.2fx" rf);
  (* crash enumeration is reported, not claimed flat: every crash point
     pays a full remount + interp, so its cost scales with images, not
     with the lockstep pass *)
  let rc =
    ratio
      (find refine "refine/journalfs-crash-enum-400ops")
      (find refine "refine/journalfs-lockstep-400ops")
  in
  Fmt.pr "  [--] %-52s %s@." "crash enumeration (remount+interp per image, info only)"
    (Fmt.str "crash-enum/lockstep %.1fx" rc)

(* BENCH-VALIDATE: `bench --validate` re-parses every persisted
   BENCH_*.json at the repo root and fails fast on a malformed one, so a
   bad snapshot breaks CI instead of silently dropping out of the
   paper's evidence trail.  The tree has no JSON library (and shouldn't
   grow one for this), so the checker is a minimal hand-rolled
   recursive-descent pass: full well-formedness, plus the snapshot
   schema — a top-level object carrying a numeric "issue" tag and at
   least one numeric metric. ------------------------------------------------- *)

module Validate = struct
  exception Malformed of string

  (* Parse [s] as one JSON value; returns (keys seen in any object,
     count of numeric literals).  Raises [Malformed] with a byte offset
     on any syntax error, including trailing garbage. *)
  let parse (s : string) : string list * int =
    let n = String.length s in
    let pos = ref 0 in
    let keys = ref [] in
    let numbers = ref 0 in
    let fail msg = raise (Malformed (Printf.sprintf "%s at byte %d" msg !pos)) in
    let peek () = if !pos >= n then '\255' else s.[!pos] in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with ' ' | '\t' | '\n' | '\r' -> advance (); skip_ws () | _ -> ()
    in
    let expect c =
      if peek () = c then advance () else fail (Printf.sprintf "expected '%c'" c)
    in
    let keyword k =
      let l = String.length k in
      if !pos + l <= n && String.sub s !pos l = k then pos := !pos + l
      else fail ("expected " ^ k)
    in
    let number () =
      let start = !pos in
      if peek () = '-' then advance ();
      let digit c = c >= '0' && c <= '9' in
      while digit (peek ()) || peek () = '.' || peek () = 'e' || peek () = 'E'
            || peek () = '+' || peek () = '-' do
        advance ()
      done;
      let lit = String.sub s start (!pos - start) in
      match float_of_string_opt lit with
      | Some _ -> incr numbers
      | None -> fail (Printf.sprintf "bad number %S" lit)
    in
    let string_lit () =
      expect '"';
      let start = !pos in
      let rec go () =
        match peek () with
        | '\255' -> fail "unterminated string"
        | '"' ->
            let v = String.sub s start (!pos - start) in
            advance ();
            v
        | '\\' ->
            advance ();
            if !pos >= n then fail "unterminated escape";
            advance ();
            go ()
        | _ -> advance (); go ()
      in
      go ()
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | '{' -> obj ()
      | '[' -> arr ()
      | '"' -> ignore (string_lit ())
      | 't' -> keyword "true"
      | 'f' -> keyword "false"
      | 'n' -> keyword "null"
      | c when c = '-' || (c >= '0' && c <= '9') -> number ()
      | '\255' -> fail "unexpected end of input"
      | c -> fail (Printf.sprintf "unexpected '%c'" c)
    and obj () =
      expect '{';
      skip_ws ();
      if peek () = '}' then advance ()
      else
        let rec members () =
          skip_ws ();
          keys := string_lit () :: !keys;
          skip_ws ();
          expect ':';
          value ();
          skip_ws ();
          match peek () with
          | ',' -> advance (); members ()
          | '}' -> advance ()
          | _ -> fail "expected ',' or '}' in object"
        in
        members ()
    and arr () =
      expect '[';
      skip_ws ();
      if peek () = ']' then advance ()
      else
        let rec elems () =
          value ();
          skip_ws ();
          match peek () with
          | ',' -> advance (); elems ()
          | ']' -> advance ()
          | _ -> fail "expected ',' or ']' in array"
        in
        elems ()
    in
    skip_ws ();
    if peek () <> '{' then fail "snapshot must be a top-level object";
    value ();
    skip_ws ();
    if !pos <> n then fail "trailing garbage after the top-level value";
    (List.rev !keys, !numbers)

  let check_file path =
    let ic = open_in_bin path in
    let s =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let keys, numbers = parse s in
    if not (List.mem "issue" keys) then
      raise (Malformed "schema: missing \"issue\" tag");
    if numbers = 0 then raise (Malformed "schema: no numeric metrics");
    (List.length keys, numbers)

  let run () =
    let root =
      match Klint.find_root () with
      | Some r -> r
      | None -> failwith "bench: cannot locate dune-project root"
    in
    let files =
      Sys.readdir root |> Array.to_list
      |> List.filter (fun f ->
             String.length f > 6
             && String.sub f 0 6 = "BENCH_"
             && Filename.check_suffix f ".json")
      |> List.sort compare
    in
    if files = [] then begin
      Fmt.epr "bench: FAIL — no BENCH_*.json snapshots under %s@." root;
      exit 1
    end;
    let bad = ref 0 in
    List.iter
      (fun f ->
        let path = Filename.concat root f in
        match check_file path with
        | nkeys, nnums ->
            Fmt.pr "bench: %-14s ok (%d keys, %d numeric metrics)@." f nkeys nnums
        | exception Malformed msg ->
            incr bad;
            Fmt.epr "bench: FAIL — %s: %s@." f msg
        | exception Sys_error msg ->
            incr bad;
            Fmt.epr "bench: FAIL — %s: %s@." f msg)
      files;
    if !bad > 0 then begin
      Fmt.epr "bench: %d malformed snapshot(s)@." !bad;
      exit 1
    end;
    Fmt.pr "bench: %d snapshot(s) valid@." (List.length files)
end

(* main ----------------------------------------------------------------------- *)

let boot_registry () =
  let r = Safeos_core.Registry.create () in
  ignore
    (Safeos_core.Registry.register r ~name:"memfs" ~kind:Safeos_core.Registry.File_system
       ~level:Safeos_core.Level.Modular ~iface:Safeos_core.Interface.fs_interface ~loc:430
       ~description:"in-memory FS, C idioms behind a modular interface" ());
  ignore
    (Safeos_core.Registry.register r ~name:"journalfs" ~kind:Safeos_core.Registry.File_system
       ~level:Safeos_core.Level.Type_safe ~iface:Safeos_core.Interface.fs_interface ~loc:620
       ~description:"journaled block FS" ());
  ignore
    (Safeos_core.Registry.register r ~name:"memfs_verified"
       ~kind:Safeos_core.Registry.File_system ~level:Safeos_core.Level.Verified
       ~iface:Safeos_core.Interface.fs_interface ~loc:230 ~description:"refinement-checked FS" ());
  r

let () =
  (* Validation mode: parse the persisted snapshots and exit — must not
     run (or overwrite) any benchmark. *)
  if Array.exists (fun a -> a = "--validate") Sys.argv then begin
    Validate.run ();
    exit 0
  end;
  Fmt.pr "================ paper artifacts (tables & figures) ================@.";
  Kcve.Figures.all std (boot_registry ());
  Format.pp_print_flush std ();
  Fmt.pr "@.================ timing benchmarks ================@.";
  refine_snapshot ();
  wcache_snapshot ();
  let modularity = bench_modularity () in
  let typesafety = bench_typesafety () in
  let ownership = bench_ownership () in
  let roadmap = bench_roadmap () in
  let journal = bench_journal () in
  let resilience = bench_resilience () in
  let supervision = bench_supervision () in
  let _ebpf = bench_ebpf () in
  let _mm = bench_mm () in
  let _kload = bench_kload () in
  let ablation = bench_ablation () in
  let lint = bench_lint () in
  let refine = bench_refine () in
  shape_summary ~modularity ~typesafety ~ownership ~roadmap ~journal ~resilience ~supervision
    ~ablation ~lint ~refine;
  Fmt.pr "@.done.@."
