(* Two ways to extend a kernel without trusting the extension.

   Part 1 — the eBPF-shaped path (related work): load a small program
   through a static verifier; it can observe and filter, but its
   expressiveness is capped (no loops), so it can never be a file system.

   Part 2 — the paper's §4.4 concurrency note, upgraded to the krefine
   enumerator: per-thread op streams are merged under many seeded
   interleavings and every merge is checked, step by step, against the
   abstract spec.  Pure queries over an immutable snapshot stay
   schedule-insensitive; a buggy implementation is convicted with a
   minimal counterexample trace.

     dune exec examples/safe_extensions.exe
*)

let () =
  Fmt.pr "== part 1: the verified extension VM ==@.@.";
  let prog = Kebpf.Attach.packet_kind_filter ~kind:1 ~min_len:4 in
  Fmt.pr "a packet filter, as the verifier sees it:@.";
  Kebpf.Insn.pp_program Format.std_formatter prog;
  Format.pp_print_flush Format.std_formatter ();
  (match Kebpf.Attach.attach_filter prog with
  | Error r -> Fmt.pr "rejected: %a@." Kebpf.Verifier.pp_rejection r
  | Ok filter ->
      Fmt.pr "@.verifier: accepted (static trip bound: %d instructions)@."
        (Kebpf.Verifier.max_trip_count prog);
      List.iter
        (fun packet ->
          Fmt.pr "  %-24s -> %s@."
            (String.concat "" (List.map (fun c -> Printf.sprintf "%02x" (Char.code c))
                                 (List.init (String.length packet) (String.get packet))))
            (if Kebpf.Attach.filter_packet filter packet then "accept" else "drop"))
        [ "\001abcd"; "\002abcd"; "\001a"; "" ]);
  Fmt.pr "@.and the program that cannot exist:@.";
  (match Kebpf.Vm.load Kebpf.Attach.looping_program with
  | Ok _ -> Fmt.pr "  loop accepted?!@."
  | Error r ->
      Fmt.pr "  %a@." Kebpf.Verifier.pp_rejection r;
      Fmt.pr "  no loops means no directory walks: observation yes, file system no.@.");

  Fmt.pr "@.== part 2: the krefine enumerator over seeded interleavings ==@.@.";
  (* Build a populated FS, take its abstract snapshot, fan out queries
     — immutable snapshots stay schedule-insensitive by construction. *)
  let fs = Kfs.Memfs_typed.mkfs () in
  let trace = Kfs.Workload.generate ~seed:13 Kfs.Workload.Mixed ~ops:400 in
  List.iter (fun op -> ignore (Kfs.Memfs_typed.apply fs op)) trace;
  let snapshot = Kfs.Memfs_typed.interpret fs in
  Fmt.pr "snapshot: files=%d dirs=%d bytes=%d max-depth=%d — fixed under any schedule@."
    (Kspec.Krefine.count_files snapshot)
    (Kspec.Krefine.count_dirs snapshot)
    (Kspec.Krefine.total_bytes snapshot)
    (Kspec.Krefine.max_depth snapshot);
  (* Three writer threads on disjoint directories: every seeded merge of
     their op streams must refine the abstract map. *)
  let module M = struct
    type vars = Kfs.Memfs_typed.fs

    let name = "memfs_typed"
    let init () = Kfs.Memfs_typed.mkfs ()
    let step v op = (v, Kfs.Memfs_typed.apply v op)
    let interp = Kfs.Memfs_typed.interpret
    let inv v = Kspec.Fs_spec.wf (Kfs.Memfs_typed.interpret v)
    let crash_images _ ~limit:_ = []
  end in
  let stream d =
    let open Kspec.Fs_spec in
    let p s = path_of_string s in
    [
      Mkdir (p ("/" ^ d));
      Create (p ("/" ^ d ^ "/f"));
      Write { file = p ("/" ^ d ^ "/f"); off = 0; data = d };
      Readdir (p ("/" ^ d));
    ]
  in
  let cov =
    Kspec.Krefine.explore ~interleavings:64 (module M) [ stream "a"; stream "b"; stream "c" ]
  in
  Fmt.pr "@.three writer streams, 64 seeded interleavings: %a@." Kspec.Krefine.pp_coverage cov;
  (* The contrast: a machine that drops a dirent on rename is convicted,
     and the enumerator shrinks the failure to a minimal trace. *)
  let module Buggy = struct
    include M

    let name = "memfs+lost-rename"

    let step v op =
      match op with
      | Kspec.Fs_spec.Rename (src, _) -> (v, Kfs.Memfs_typed.apply v (Kspec.Fs_spec.Unlink src))
      | _ -> (v, Kfs.Memfs_typed.apply v op)
  end in
  let open Kspec.Fs_spec in
  let p s = path_of_string s in
  let bad =
    Kspec.Krefine.run
      (module Buggy)
      (stream "a" @ [ Create (p "/x"); Rename (p "/x", p "/y"); Stat (p "/y") ])
  in
  match bad.Kspec.Krefine.divergences with
  | d :: _ ->
      Fmt.pr "@.buggy rename convicted: %a@." Kspec.Krefine.pp_divergence d;
      Fmt.pr "  minimal counterexample: %d op(s)@."
        (List.length d.Kspec.Krefine.counterexample)
  | [] -> Fmt.pr "@.buggy rename escaped?!@."
