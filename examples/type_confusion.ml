(* Type confusion, before and after roadmap step 2.

   Reproduces the shape of CVE-2020-12351 ("type confusion while
   processing AMP packets"): a packet whose header claims one channel
   type, delivered to a channel registered as another.  The C-shaped
   stack casts and crashes; the type-safe stack returns EPROTO.

     dune exec examples/type_confusion.exe
*)

let () =
  let attack = Knet.Amp.confusion_packet ~control_channel:1 "malicious payload" in
  Fmt.pr "the attack packet: header claims DATA, addressed to control channel 1@.@.";

  (* Step 0: the void-pointer stack. *)
  Fmt.pr "== unsafe (C-shaped) AMP stack ==@.";
  let unsafe = Knet.Amp.Unsafe.create () in
  Knet.Amp.Unsafe.register unsafe ~channel:1 Knet.Amp.Control;
  (match Knet.Amp.Unsafe.receive unsafe attack with
  | Ok () -> Fmt.pr "  processed?! (should not happen)@."
  | Error e -> Fmt.pr "  error: %a@." Ksim.Errno.pp e
  | exception Ksim.Dyn.Type_confusion { expected; actual } ->
      Fmt.pr "  KERNEL OOPS: type confusion — cast to %s, but memory holds %s@." expected actual;
      Fmt.pr "  (in C this is a use of attacker-controlled memory: CVE material)@.");

  (* Step 2: the same protocol, decoded into a sum type. *)
  Fmt.pr "@.== type-safe AMP stack ==@.";
  let typed = Knet.Amp.Typed.create () in
  Knet.Amp.Typed.register typed ~channel:1 Knet.Amp.Control;
  (match Knet.Amp.Typed.receive typed attack with
  | Ok () -> Fmt.pr "  processed?! (should not happen)@."
  | Error e -> Fmt.pr "  rejected with %a — no crash, no corruption, connection lives on@." Ksim.Errno.pp e);

  (* The same lesson at the socket layer: private data behind void*.
     This subsystem has since been migrated to the checked projection
     (the klint R1 ratchet), so the mismatch degrades to EPROTO — the
     "after" state the AMP stack above shows for step 2. *)
  Fmt.pr "@.== socket private data (migrated to checked projection) ==@.";
  let bad = Knet.Sock.Dyn_style.mismatched_socket () in
  (match Knet.Sock.Dyn_style.send bad "payload" with
  | Ok _ -> Fmt.pr "  sent?! (should not happen)@."
  | Error e ->
      Fmt.pr "  rejected with %a — the projection caught the mismatch, no oops@."
        Ksim.Errno.pp e);

  (* And the error-pointer idiom the paper calls out for VFS lookup. *)
  Fmt.pr "@.== ERR_PTR dereference ==@.";
  let fs = Kfs.Memfs_unsafe.mkfs () in
  let handle = Kfs.Memfs_unsafe.Legacy.lookup fs "/does/not/exist" in
  Fmt.pr "  lookup returned %a@." Ksim.Dyn.Errptr.pp handle;
  (match Ksim.Dyn.Errptr.deref handle with
  | _ -> Fmt.pr "  dereferenced?!@."
  | exception Ksim.Dyn.Null_dereference ->
      Fmt.pr "  KERNEL OOPS: dereferenced an error pointer (the caller forgot IS_ERR)@.");
  Fmt.pr "@.in the type-safe convention the same mistakes do not compile:@.";
  Fmt.pr "  results are sum types, private data is matched, not cast.@."
